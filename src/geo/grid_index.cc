#include "geo/grid_index.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace stmaker {

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  STMAKER_CHECK(cell_size > 0);
}

GridIndex::CellKey GridIndex::CellOf(const Vec2& p) const {
  return {static_cast<int64_t>(std::floor(p.x / cell_size_)),
          static_cast<int64_t>(std::floor(p.y / cell_size_))};
}

void GridIndex::Insert(int64_t id, const Vec2& pos) {
  size_t idx = items_.size();
  items_.push_back({id, pos});
  cells_[CellOf(pos)].push_back(idx);
}

std::vector<int64_t> GridIndex::WithinRadius(const Vec2& center,
                                             double radius) const {
  std::vector<int64_t> out;
  AppendWithinRadius(center, radius, &out);
  return out;
}

void GridIndex::AppendWithinRadius(const Vec2& center, double radius,
                                   std::vector<int64_t>* out) const {
  if (radius < 0 || items_.empty()) return;
  int64_t span = static_cast<int64_t>(std::ceil(radius / cell_size_));
  CellKey c = CellOf(center);
  for (int64_t dx = -span; dx <= span; ++dx) {
    for (int64_t dy = -span; dy <= span; ++dy) {
      auto it = cells_.find({c.cx + dx, c.cy + dy});
      if (it == cells_.end()) continue;
      for (size_t idx : it->second) {
        if (Distance(items_[idx].pos, center) <= radius) {
          out->push_back(items_[idx].id);
        }
      }
    }
  }
}

int64_t GridIndex::Nearest(const Vec2& p, double max_radius) const {
  if (items_.empty()) return -1;
  // Expanding ring search: examine cells at increasing Chebyshev distance
  // until a hit is found, then one more ring to guarantee the true nearest.
  CellKey c = CellOf(p);
  int64_t best_id = -1;
  double best_d = std::numeric_limits<double>::infinity();
  // Upper bound on rings: enough to cover the requested radius, or the whole
  // index when unbounded (a linear fallback below handles sparse overflow).
  int64_t max_ring = 2 + static_cast<int64_t>(
      max_radius >= 0 ? std::ceil(max_radius / cell_size_) : 1 << 16);
  for (int64_t ring = 0; ring <= max_ring; ++ring) {
    // Any cell at Chebyshev ring k is at least (k-1)*cell_size_ away from p,
    // so once that bound exceeds the best distance the search is complete.
    if (best_id >= 0 && (ring - 1) * cell_size_ > best_d) break;
    for (int64_t dx = -ring; dx <= ring; ++dx) {
      for (int64_t dy = -ring; dy <= ring; ++dy) {
        if (std::max(std::llabs(dx), std::llabs(dy)) != ring) continue;
        auto it = cells_.find({c.cx + dx, c.cy + dy});
        if (it == cells_.end()) continue;
        for (size_t idx : it->second) {
          double d = Distance(items_[idx].pos, p);
          if (d < best_d) {
            best_d = d;
            best_id = items_[idx].id;
          }
        }
      }
    }
  }
  if (best_id < 0 && max_radius < 0) {
    // Ring budget exhausted without a hit (extremely sparse index far from
    // the query); fall back to an exact linear scan.
    for (const Item& item : items_) {
      double d = Distance(item.pos, p);
      if (d < best_d) {
        best_d = d;
        best_id = item.id;
      }
    }
  }
  if (max_radius >= 0 && best_d > max_radius) return -1;
  return best_id;
}

}  // namespace stmaker
