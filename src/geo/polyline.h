#ifndef STMAKER_GEO_POLYLINE_H_
#define STMAKER_GEO_POLYLINE_H_

/// \file
/// Planar polyline with cached arc lengths, interpolation, and
/// point-to-polyline projection.

#include <vector>

#include "geo/vec2.h"

namespace stmaker {

/// Result of projecting a point onto a polyline.
struct PolylineProjection {
  double distance = 0;    ///< Euclidean distance from point to polyline, m.
  double arc_length = 0;  ///< Arc-length position of the foot point, m.
  size_t segment = 0;     ///< Index of the segment containing the foot point.
  Vec2 point;             ///< The foot point itself.
};

/// Distance from `p` to the segment [a, b], with the closest point's
/// parameter t in [0, 1] optionally returned.
double PointSegmentDistance(const Vec2& p, const Vec2& a, const Vec2& b,
                            double* t_out = nullptr);

/// \brief A planar polyline with cached cumulative arc lengths.
///
/// Supports the geometric primitives the trajectory pipeline needs:
/// projection of a GPS fix onto a route, interpolation at an arc-length
/// position, and total length. Degenerate polylines (0 or 1 vertex) are
/// allowed; their length is zero.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Vec2> points);

  const std::vector<Vec2>& points() const { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Total arc length in meters.
  double Length() const;

  /// Cumulative arc length at vertex i (0 at the first vertex).
  double CumulativeLength(size_t i) const;

  /// Projects `p` onto the polyline (closest point over all segments).
  /// Requires at least one vertex; a single-vertex polyline projects
  /// everything onto that vertex.
  PolylineProjection Project(const Vec2& p) const;

  /// Point at arc-length `s`, clamped to [0, Length()].
  Vec2 Interpolate(double s) const;

  /// Heading (degrees from north) of the segment at arc-length `s`.
  /// Returns 0 for degenerate polylines.
  double HeadingAt(double s) const;

 private:
  std::vector<Vec2> points_;
  std::vector<double> cum_;  // cum_[i] = arc length at points_[i].
};

}  // namespace stmaker

#endif  // STMAKER_GEO_POLYLINE_H_
