#include "text/phrases.h"

#include <cmath>

#include "common/check.h"
#include "common/strings.h"
#include "text/template_engine.h"

namespace stmaker {

namespace {

// Table V feature phrase templates.
constexpr char kGradeTemplate[] =
    "through {given_type} ({road_name}) while most drivers choose "
    "{regular_type}";
constexpr char kGradeTemplateNoName[] =
    "through {given_type} while most drivers choose {regular_type}";
constexpr char kWidthTemplate[] =
    "through {width} metres wide roads while most drivers prefer "
    "{comparative} roads";
constexpr char kDirectionTemplate[] =
    "through {given_direction} while most drivers prefer {regular_direction}";
constexpr char kSpeedTemplate[] =
    "with the speed of {speed} km/h which was {delta} km/h {comparative} "
    "than usual";
constexpr char kStayTemplate[] =
    "with {count} staying point{plural} (in total for about {duration})";
constexpr char kUTurnTemplate[] =
    "with conducting {count} U-turn{plural}{places}";

// Table VI sentence templates.
constexpr char kFirstSentence[] =
    "The car started from {source} to {destination} {body}.";
constexpr char kNextSentence[] =
    "Then it moved from {source} to {destination} {body}.";

std::string MustRender(const std::string& tmpl, const TemplateValues& values) {
  Result<std::string> rendered = RenderTemplate(tmpl, values);
  STMAKER_CHECK(rendered.ok());
  return std::move(rendered).value();
}

}  // namespace

std::string GradeOfRoadPhrase(const std::string& given_type,
                              const std::string& road_name,
                              const std::string& regular_type) {
  TemplateValues v{{"given_type", given_type},
                   {"road_name", road_name},
                   {"regular_type", regular_type}};
  return MustRender(road_name.empty() ? kGradeTemplateNoName : kGradeTemplate,
                    v);
}

std::string RoadWidthPhrase(double given_width_m, double regular_width_m) {
  TemplateValues v{
      {"width", FormatNumber(given_width_m, 0)},
      {"comparative", given_width_m < regular_width_m ? "wider" : "narrower"},
  };
  return MustRender(kWidthTemplate, v);
}

std::string TrafficDirectionPhrase(const std::string& given_direction,
                                   const std::string& regular_direction) {
  TemplateValues v{{"given_direction", given_direction},
                   {"regular_direction", regular_direction}};
  return MustRender(kDirectionTemplate, v);
}

std::string SpeedPhrase(double given_kmh, double regular_kmh) {
  double delta = given_kmh - regular_kmh;
  TemplateValues v{
      {"speed", FormatNumber(given_kmh, 1)},
      {"delta", FormatNumber(std::fabs(delta), 0)},
      {"comparative", delta >= 0 ? "faster" : "slower"},
  };
  return MustRender(kSpeedTemplate, v);
}

std::string StayPointsPhrase(int count, double total_duration_s) {
  TemplateValues v{
      {"count", std::to_string(count)},
      {"plural", count == 1 ? "" : "s"},
      {"duration", FormatDuration(total_duration_s)},
  };
  return MustRender(kStayTemplate, v);
}

std::string UTurnsPhrase(int count, const std::vector<std::string>& places) {
  std::string at;
  if (!places.empty()) {
    at = " at " + Join(places, ", ");
  }
  TemplateValues v{
      {"count", count == 1 ? std::string("one") : std::to_string(count)},
      {"plural", count == 1 ? "" : "s"},
      {"places", at},
  };
  return MustRender(kUTurnTemplate, v);
}

std::string PartitionSentence(bool is_first, const std::string& source,
                              const std::string& destination,
                              const std::string& road_type,
                              const std::vector<std::string>& phrases) {
  std::string body;
  if (phrases.empty()) {
    body = "smoothly";
  } else {
    if (!road_type.empty()) body = "through " + road_type + ", ";
    body += Join(phrases, ", and ");
  }
  TemplateValues v{{"source", source},
                   {"destination", destination},
                   {"body", body}};
  return MustRender(is_first ? kFirstSentence : kNextSentence, v);
}

}  // namespace stmaker
