#ifndef STMAKER_TEXT_TEMPLATE_ENGINE_H_
#define STMAKER_TEXT_TEMPLATE_ENGINE_H_

/// \file
/// {name}-style template rendering (Sec. VI-A).

#include <map>
#include <string>

#include "common/status.h"

namespace stmaker {

/// Placeholder values for one rendering, keyed by placeholder name.
using TemplateValues = std::map<std::string, std::string>;

/// \brief Renders `{name}`-style templates (Sec. VI-A).
///
/// Grammar: `{identifier}` substitutes the value bound to `identifier`;
/// `{{` and `}}` escape literal braces. Rendering fails with
/// InvalidArgument on an unbound placeholder, an empty placeholder, or an
/// unterminated brace — summaries must never silently ship holes.
Result<std::string> RenderTemplate(const std::string& tmpl,
                                   const TemplateValues& values);

}  // namespace stmaker

#endif  // STMAKER_TEXT_TEMPLATE_ENGINE_H_
