#ifndef STMAKER_TEXT_PHRASES_H_
#define STMAKER_TEXT_PHRASES_H_

#include <string>
#include <vector>

namespace stmaker {

/// \file
/// Phrase templates for the built-in features (Table V) and sentence
/// templates for partitions (Table VI). Each builder fills the corresponding
/// template via RenderTemplate; templates and builders live together so a
/// new feature can follow the same pattern (Sec. VI-B).

/// "through <given type> (<name>) while most drivers choose <regular type>".
std::string GradeOfRoadPhrase(const std::string& given_type,
                              const std::string& road_name,
                              const std::string& regular_type);

/// "through <w> metres wide roads while most drivers prefer wider/narrower
/// roads".
std::string RoadWidthPhrase(double given_width_m, double regular_width_m);

/// "through <given direction> while most drivers prefer <regular
/// direction>".
std::string TrafficDirectionPhrase(const std::string& given_direction,
                                   const std::string& regular_direction);

/// "with the speed of <v> km/h which was <d> km/h faster/slower than usual".
std::string SpeedPhrase(double given_kmh, double regular_kmh);

/// "with <n> stay points (in total for about <duration>)".
std::string StayPointsPhrase(int count, double total_duration_s);

/// "with conducting <n> U-turns at <places>". Places may be empty.
std::string UTurnsPhrase(int count, const std::vector<std::string>& places);

/// Table VI sentence: "The car started/Then it moved from <src> to <dst>
/// through <road type>, with <phrases>." — or "... smoothly." when no
/// feature was selected for the partition.
std::string PartitionSentence(bool is_first, const std::string& source,
                              const std::string& destination,
                              const std::string& road_type,
                              const std::vector<std::string>& phrases);

}  // namespace stmaker

#endif  // STMAKER_TEXT_PHRASES_H_
