#include "text/template_engine.h"

namespace stmaker {

Result<std::string> RenderTemplate(const std::string& tmpl,
                                   const TemplateValues& values) {
  std::string out;
  out.reserve(tmpl.size());
  for (size_t i = 0; i < tmpl.size(); ++i) {
    char c = tmpl[i];
    if (c == '{') {
      if (i + 1 < tmpl.size() && tmpl[i + 1] == '{') {
        out += '{';
        ++i;
        continue;
      }
      size_t close = tmpl.find('}', i + 1);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated placeholder in: " +
                                       tmpl);
      }
      std::string name = tmpl.substr(i + 1, close - i - 1);
      if (name.empty()) {
        return Status::InvalidArgument("empty placeholder in: " + tmpl);
      }
      auto it = values.find(name);
      if (it == values.end()) {
        return Status::InvalidArgument("unbound placeholder '" + name +
                                       "' in: " + tmpl);
      }
      out += it->second;
      i = close;
    } else if (c == '}') {
      if (i + 1 < tmpl.size() && tmpl[i + 1] == '}') {
        out += '}';
        ++i;
        continue;
      }
      return Status::InvalidArgument("stray '}' in: " + tmpl);
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace stmaker
