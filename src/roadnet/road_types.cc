#include "roadnet/road_types.h"

namespace stmaker {

std::string RoadGradeName(RoadGrade grade) {
  switch (grade) {
    case RoadGrade::kHighway:
      return "highway";
    case RoadGrade::kExpressRoad:
      return "express road";
    case RoadGrade::kNationalRoad:
      return "national road";
    case RoadGrade::kProvincialRoad:
      return "provincial road";
    case RoadGrade::kCountryRoad:
      return "country road";
    case RoadGrade::kVillageRoad:
      return "village road";
    case RoadGrade::kFeederRoad:
      return "feeder road";
  }
  return "road";
}

std::string TrafficDirectionName(TrafficDirection direction) {
  return direction == TrafficDirection::kOneWay ? "a one-way road"
                                                : "a two-way road";
}

double FreeFlowSpeedKmh(RoadGrade grade) {
  switch (grade) {
    case RoadGrade::kHighway:
      return 100.0;
    case RoadGrade::kExpressRoad:
      return 80.0;
    case RoadGrade::kNationalRoad:
      return 70.0;
    case RoadGrade::kProvincialRoad:
      return 60.0;
    case RoadGrade::kCountryRoad:
      return 50.0;
    case RoadGrade::kVillageRoad:
      return 40.0;
    case RoadGrade::kFeederRoad:
      return 30.0;
  }
  return 50.0;
}

double TypicalWidthMeters(RoadGrade grade) {
  switch (grade) {
    case RoadGrade::kHighway:
      return 30.0;
    case RoadGrade::kExpressRoad:
      return 25.0;
    case RoadGrade::kNationalRoad:
      return 20.0;
    case RoadGrade::kProvincialRoad:
      return 15.0;
    case RoadGrade::kCountryRoad:
      return 10.0;
    case RoadGrade::kVillageRoad:
      return 7.0;
    case RoadGrade::kFeederRoad:
      return 5.0;
  }
  return 10.0;
}

bool IsValidRoadGrade(int v) { return v >= 1 && v <= 7; }

}  // namespace stmaker
