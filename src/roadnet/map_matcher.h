#ifndef STMAKER_ROADNET_MAP_MATCHER_H_
#define STMAKER_ROADNET_MAP_MATCHER_H_

/// \file
/// Viterbi map matching of raw trajectories onto the road graph.

#include <vector>

#include "common/context.h"
#include "common/status.h"
#include "geo/vec2.h"
#include "roadnet/road_network.h"

namespace stmaker {

/// Tuning knobs of the matcher. Defaults suit urban GPS with ~10–20 m noise.
struct MapMatchOptions {
  double candidate_radius_m = 60.0;  ///< Edge search radius per fix.
  int max_candidates = 6;           ///< Candidate edges kept per fix.
  double gps_sigma_m = 15.0;        ///< Emission noise scale.
  double adjacency_cost = 3.0;      ///< Transition to a connected edge.
  double jump_cost = 40.0;          ///< Transition to a disconnected edge.
};

/// \brief Viterbi map matcher (White et al. [36] / Newson–Krumm [24] style,
/// simplified to segment-level states).
///
/// For each GPS fix, candidate edges within the search radius are scored by
/// an emission cost (squared normalized distance) and chained with transition
/// costs favouring staying on the same edge or moving to a topologically
/// connected one. The Viterbi path yields one edge id per fix; fixes with no
/// candidate in range get -1 and break the chain.
class MapMatcher {
 public:
  /// The network must have its spatial index built and must outlive the
  /// matcher.
  explicit MapMatcher(const RoadNetwork* network,
                      const MapMatchOptions& options = MapMatchOptions());

  /// Matches a sequence of projected GPS fixes to edge ids.
  std::vector<EdgeId> Match(const std::vector<Vec2>& points) const;

  /// Context-aware matching for the serving path: the candidate scan and
  /// the Viterbi recursion check the deadline/cancel token periodically
  /// and abort with kDeadlineExceeded/kCancelled. With a null context
  /// this is exactly Match() and cannot fail.
  Result<std::vector<EdgeId>> Match(const std::vector<Vec2>& points,
                                    const RequestContext* ctx) const;

 private:
  const RoadNetwork* network_;
  MapMatchOptions options_;
};

}  // namespace stmaker

#endif  // STMAKER_ROADNET_MAP_MATCHER_H_
