#ifndef STMAKER_ROADNET_ROUTE_CACHE_H_
#define STMAKER_ROADNET_ROUTE_CACHE_H_

/// \file
/// CachingRouter: LRU-memoized point-to-point routing over a fixed cost
/// function.

#include <cstdint>
#include <mutex>
#include <utility>

#include "common/context.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "roadnet/shortest_path.h"

namespace stmaker {

/// \brief A ShortestPathRouter with a bounded, mutex-guarded LRU over
/// point-to-point queries.
///
/// The cost function is fixed at construction — a cache entry is only
/// valid for the costs it was computed under, so per-query cost functions
/// (like the trajectory generator's per-trip perturbed costs) must keep
/// using the raw router. Serving workloads that route under one stable
/// metric (length, free-flow time) and re-query the same OD pairs heavily
/// get their repeats answered from the cache; failures (NotFound) are
/// memoized too, since an unreachable pair stays unreachable for a fixed
/// network.
///
/// Thread-safety: Route() may be called concurrently from any number of
/// threads (the cache is behind a mutex; the underlying Dijkstra is
/// const-pure). The network must not change while a CachingRouter exists
/// over it.
class CachingRouter {
 public:
  /// `network` must outlive the router. A null `cost` selects geometric
  /// length, as with ShortestPathRouter::Route.
  CachingRouter(const RoadNetwork* network, EdgeCostFn cost,
                size_t capacity = 4096);

  /// Forwards to ShortestPathRouter::AttachHierarchy on the wrapped
  /// router: cache misses under a null cost function are then answered by
  /// the hierarchy instead of Dijkstra. Cached entries stay valid — both
  /// backends compute the same metric. Attach before serving; not
  /// synchronized with concurrent Route() calls.
  ///
  /// \param hierarchy The hierarchy to accelerate misses with, or null.
  void AttachHierarchy(const ContractionHierarchy* hierarchy) {
    router_.AttachHierarchy(hierarchy);
  }

  /// Cached Dijkstra from `src` to `dst` under the fixed cost function.
  ///
  /// With a context, an uncached search honors its deadline/cancel/budget
  /// limits; the resulting kDeadlineExceeded/kCancelled/kResourceExhausted
  /// statuses describe the request, not the OD pair, and are never
  /// memoized (a later call with a fresh context recomputes).
  Result<Path> Route(NodeId src, NodeId dst,
                     const RequestContext* ctx = nullptr) const;

  /// Hit/miss/eviction counters since construction.
  CacheStats Stats() const;

 private:
  struct PairHash {
    size_t operator()(const std::pair<NodeId, NodeId>& p) const {
      uint64_t h = static_cast<uint64_t>(p.first) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(p.second) + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  ShortestPathRouter router_;
  EdgeCostFn cost_;
  mutable std::mutex mu_;
  mutable LruCache<std::pair<NodeId, NodeId>, Result<Path>, PairHash> cache_;
};

}  // namespace stmaker

#endif  // STMAKER_ROADNET_ROUTE_CACHE_H_
