#ifndef STMAKER_ROADNET_ROAD_TYPES_H_
#define STMAKER_ROADNET_ROAD_TYPES_H_

/// \file
/// Road grade and traffic-direction enums with display names and
/// per-grade defaults.

#include <string>

namespace stmaker {

/// Grade of road, after the paper's seven-level scheme (Sec. III-A).
/// Smaller numeric value means higher transportation capacity.
enum class RoadGrade : int {
  kHighway = 1,
  kExpressRoad = 2,
  kNationalRoad = 3,
  kProvincialRoad = 4,
  kCountryRoad = 5,
  kVillageRoad = 6,
  kFeederRoad = 7,
};

/// Traffic direction of a road (Sec. III-A): 1 = two-way, 2 = one-way.
enum class TrafficDirection : int {
  kTwoWay = 1,
  kOneWay = 2,
};

/// Human-readable name used in summaries ("highway", "express road", ...).
std::string RoadGradeName(RoadGrade grade);

/// Human-readable direction ("a two-way road" / "a one-way road").
std::string TrafficDirectionName(TrafficDirection direction);

/// Free-flow design speed for a grade, km/h. Drives both the synthetic
/// trajectory simulator and the speed irregularity baseline.
double FreeFlowSpeedKmh(RoadGrade grade);

/// Typical carriageway width for a grade, meters (jittered per-edge by the
/// map generator).
double TypicalWidthMeters(RoadGrade grade);

/// True if `v` is a valid RoadGrade integer (1..7).
bool IsValidRoadGrade(int v);

}  // namespace stmaker

#endif  // STMAKER_ROADNET_ROAD_TYPES_H_
