#include "roadnet/road_network.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "geo/polyline.h"

namespace stmaker {

NodeId RoadNetwork::AddNode(const Vec2& pos) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({id, pos, false});
  adjacency_.emplace_back();
  undirected_degree_.push_back(0);
  return id;
}

Result<EdgeId> RoadNetwork::AddEdge(NodeId from, NodeId to, RoadGrade grade,
                                    double width_m,
                                    TrafficDirection direction,
                                    std::string name) {
  if (from < 0 || static_cast<size_t>(from) >= nodes_.size() || to < 0 ||
      static_cast<size_t>(to) >= nodes_.size()) {
    return Status::InvalidArgument("AddEdge: node id out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("AddEdge: self-loop not allowed");
  }
  if (width_m <= 0) {
    return Status::InvalidArgument("AddEdge: non-positive width");
  }
  EdgeId id = static_cast<EdgeId>(edges_.size());
  RoadEdge e;
  e.id = id;
  e.from = from;
  e.to = to;
  e.grade = grade;
  e.width_m = width_m;
  e.direction = direction;
  e.name = std::move(name);
  e.length_m = Distance(nodes_[from].pos, nodes_[to].pos);
  edges_.push_back(std::move(e));

  adjacency_[from].push_back({id, to, /*forward=*/true});
  if (direction == TrafficDirection::kTwoWay) {
    adjacency_[to].push_back({id, from, /*forward=*/false});
  }
  undirected_degree_[from]++;
  undirected_degree_[to]++;
  return id;
}

const RoadNode& RoadNetwork::node(NodeId id) const {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[id];
}

RoadNode& RoadNetwork::mutable_node(NodeId id) {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[id];
}

const RoadEdge& RoadNetwork::edge(EdgeId id) const {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < edges_.size());
  return edges_[id];
}

RoadEdge& RoadNetwork::mutable_edge(EdgeId id) {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < edges_.size());
  return edges_[id];
}

const std::vector<Adjacency>& RoadNetwork::OutEdges(NodeId id) const {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < adjacency_.size());
  return adjacency_[id];
}

size_t RoadNetwork::Degree(NodeId id) const {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return undirected_degree_[id];
}

EdgeId RoadNetwork::FindEdgeBetween(NodeId a, NodeId b) const {
  for (const Adjacency& adj : OutEdges(a)) {
    if (adj.neighbor == b) return adj.edge;
  }
  return -1;
}

void RoadNetwork::AnnotateTurningPoints() {
  for (RoadNode& n : nodes_) {
    n.is_turning_point = undirected_degree_[n.id] != 2;
  }
}

void RoadNetwork::BuildSpatialIndex(double sample_step_m) {
  STMAKER_CHECK(sample_step_m > 0);
  edge_index_ = std::make_unique<GridIndex>(sample_step_m * 2.0);
  for (const RoadEdge& e : edges_) {
    const Vec2& a = nodes_[e.from].pos;
    const Vec2& b = nodes_[e.to].pos;
    int steps = std::max(1, static_cast<int>(e.length_m / sample_step_m));
    for (int s = 0; s <= steps; ++s) {
      double t = static_cast<double>(s) / steps;
      edge_index_->Insert(e.id, a + (b - a) * t);
    }
  }
}

double RoadNetwork::DistanceToEdge(const Vec2& p, EdgeId e) const {
  const RoadEdge& edge = this->edge(e);
  return PointSegmentDistance(p, nodes_[edge.from].pos, nodes_[edge.to].pos);
}

EdgeId RoadNetwork::NearestEdge(const Vec2& p, double max_radius) const {
  if (edge_index_ == nullptr) return -1;
  std::vector<int64_t> candidates = edge_index_->WithinRadius(p, max_radius);
  EdgeId best = -1;
  double best_d = max_radius;
  std::unordered_set<int64_t> seen;
  for (int64_t id : candidates) {
    if (!seen.insert(id).second) continue;
    double d = DistanceToEdge(p, id);
    if (d <= best_d) {
      best_d = d;
      best = id;
    }
  }
  return best;
}

std::vector<EdgeId> RoadNetwork::EdgesNear(const Vec2& p,
                                           double radius) const {
  std::vector<EdgeId> out;
  if (edge_index_ == nullptr) return out;
  std::unordered_set<int64_t> seen;
  // Sample points are at most (sample step) away from the true geometry, so
  // widen the index query a little and verify with exact distances.
  for (int64_t id : edge_index_->WithinRadius(p, radius * 1.5 + 60.0)) {
    if (!seen.insert(id).second) continue;
    if (DistanceToEdge(p, id) <= radius) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace stmaker
