#include "roadnet/road_network.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geo/polyline.h"

namespace stmaker {

namespace {

/// Per-thread visited stamps for deduplicating spatial-index probes (an
/// edge is inserted at many sample points, so one probe returns the same
/// id repeatedly). A monotonically increasing epoch makes clearing free;
/// thread_local makes concurrent queries race-free without locks.
struct DedupStamps {
  std::vector<uint64_t> stamp;
  uint64_t epoch = 0;

  /// Starts a new query over ids in [0, size). Returns the query epoch.
  uint64_t Begin(size_t size) {
    if (stamp.size() < size) stamp.resize(size, 0);
    return ++epoch;
  }
  /// True the first time `id` is seen this epoch.
  bool FirstVisit(int64_t id, uint64_t e) {
    if (stamp[static_cast<size_t>(id)] == e) return false;
    stamp[static_cast<size_t>(id)] = e;
    return true;
  }
};

DedupStamps& Stamps() {
  thread_local DedupStamps stamps;
  return stamps;
}

/// Scratch id buffer for spatial-index probes, reused across queries.
std::vector<int64_t>& ProbeBuffer() {
  thread_local std::vector<int64_t> buffer;
  return buffer;
}

}  // namespace

RoadNetwork::RoadNetwork(RoadNetwork&& other) noexcept {
  *this = std::move(other);
}

RoadNetwork& RoadNetwork::operator=(RoadNetwork&& other) noexcept {
  if (this == &other) return *this;
  nodes_ = std::move(other.nodes_);
  edges_ = std::move(other.edges_);
  undirected_degree_ = std::move(other.undirected_degree_);
  edge_geom_ = std::move(other.edge_geom_);
  edge_ends_ = std::move(other.edge_ends_);
  csr_offsets_ = std::move(other.csr_offsets_);
  csr_entries_ = std::move(other.csr_entries_);
  // The views point either at the vectors' heap buffers (which the moves
  // above preserve) or at an external mapping; both stay valid.
  edge_geom_view_ = other.edge_geom_view_;
  edge_ends_view_ = other.edge_ends_view_;
  csr_offsets_view_ = other.csr_offsets_view_;
  csr_entries_view_ = other.csr_entries_view_;
  adopted_ = other.adopted_;
  pending_ = std::move(other.pending_);
  csr_dirty_.store(other.csr_dirty_.load(std::memory_order_acquire),
                   std::memory_order_release);
  csr_mu_ = std::move(other.csr_mu_);
  edge_index_ = std::move(other.edge_index_);
  return *this;
}

NodeId RoadNetwork::AddNode(const Vec2& pos) {
  STMAKER_CHECK(!adopted_);
  NodeId id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back({id, pos, false});
  undirected_degree_.push_back(0);
  csr_dirty_.store(true, std::memory_order_release);
  return id;
}

Result<EdgeId> RoadNetwork::AddEdge(NodeId from, NodeId to, RoadGrade grade,
                                    double width_m,
                                    TrafficDirection direction,
                                    std::string name) {
  STMAKER_CHECK(!adopted_);
  if (from < 0 || static_cast<size_t>(from) >= nodes_.size() || to < 0 ||
      static_cast<size_t>(to) >= nodes_.size()) {
    return Status::InvalidArgument("AddEdge: node id out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("AddEdge: self-loop not allowed");
  }
  if (width_m <= 0) {
    return Status::InvalidArgument("AddEdge: non-positive width");
  }
  EdgeId id = static_cast<EdgeId>(edges_.size());
  RoadEdge e;
  e.id = id;
  e.from = from;
  e.to = to;
  e.grade = grade;
  e.width_m = width_m;
  e.direction = direction;
  e.name = std::move(name);
  e.length_m = Distance(nodes_[from].pos, nodes_[to].pos);
  edges_.push_back(std::move(e));
  edge_geom_.push_back({nodes_[from].pos, nodes_[to].pos});
  edge_ends_.push_back(
      {static_cast<int32_t>(from), static_cast<int32_t>(to)});
  edge_geom_view_ = edge_geom_;
  edge_ends_view_ = edge_ends_;

  pending_.push_back({from, Adjacency{id, to, /*forward=*/true}});
  if (direction == TrafficDirection::kTwoWay) {
    pending_.push_back({to, Adjacency{id, from, /*forward=*/false}});
  }
  csr_dirty_.store(true, std::memory_order_release);
  undirected_degree_[from]++;
  undirected_degree_[to]++;
  return id;
}

void RoadNetwork::FinalizeAdjacency() const {
  STMAKER_CHECK(!adopted_);  // an adopted CSR is final by construction
  std::lock_guard<std::mutex> lock(*csr_mu_);
  if (!csr_dirty_.load(std::memory_order_relaxed)) return;  // raced; done

  // Merge the already-packed entries with the pending ones via a stable
  // counting sort keyed by node, preserving AddEdge order per node (the
  // order the old per-node vectors produced, which tie-breaks in routing
  // and trip generation depend on).
  const size_t n = nodes_.size();
  std::vector<uint32_t> counts(n + 1, 0);
  std::vector<uint32_t> old_offsets = std::move(csr_offsets_);
  std::vector<Adjacency> old_entries = std::move(csr_entries_);
  const size_t old_nodes =
      old_offsets.empty() ? 0 : old_offsets.size() - 1;
  for (size_t u = 0; u < old_nodes; ++u) {
    counts[u] += old_offsets[u + 1] - old_offsets[u];
  }
  for (const auto& [u, adj] : pending_) {
    counts[static_cast<size_t>(u)]++;
  }
  std::vector<uint32_t> offsets(n + 1, 0);
  for (size_t u = 0; u < n; ++u) offsets[u + 1] = offsets[u] + counts[u];
  std::vector<Adjacency> entries(offsets[n]);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (size_t u = 0; u < old_nodes; ++u) {
    for (uint32_t i = old_offsets[u]; i < old_offsets[u + 1]; ++i) {
      entries[cursor[u]++] = old_entries[i];
    }
  }
  for (const auto& [u, adj] : pending_) {
    entries[cursor[static_cast<size_t>(u)]++] = adj;
  }
  csr_offsets_ = std::move(offsets);
  csr_entries_ = std::move(entries);
  csr_offsets_view_ = csr_offsets_;
  csr_entries_view_ = csr_entries_;
  pending_.clear();
  pending_.shrink_to_fit();
  csr_dirty_.store(false, std::memory_order_release);
}

RoadNetwork::AdjacencySpan RoadNetwork::OutEdges(NodeId id) const {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  if (csr_dirty_.load(std::memory_order_acquire)) FinalizeAdjacency();
  const uint32_t begin = csr_offsets_view_[static_cast<size_t>(id)];
  const uint32_t end = csr_offsets_view_[static_cast<size_t>(id) + 1];
  return csr_entries_view_.subspan(begin, end - begin);
}

std::span<const uint32_t> RoadNetwork::csr_offsets() const {
  if (csr_dirty_.load(std::memory_order_acquire)) FinalizeAdjacency();
  return csr_offsets_view_;
}

std::span<const Adjacency> RoadNetwork::csr_entries() const {
  if (csr_dirty_.load(std::memory_order_acquire)) FinalizeAdjacency();
  return csr_entries_view_;
}

const RoadNode& RoadNetwork::node(NodeId id) const {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[id];
}

RoadNode& RoadNetwork::mutable_node(NodeId id) {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return nodes_[id];
}

const RoadEdge& RoadNetwork::edge(EdgeId id) const {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < edges_.size());
  return edges_[id];
}

RoadEdge& RoadNetwork::mutable_edge(EdgeId id) {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < edges_.size());
  return edges_[id];
}

const RoadNetwork::EdgeGeometry& RoadNetwork::edge_geometry(EdgeId e) const {
  STMAKER_CHECK(e >= 0 && static_cast<size_t>(e) < edge_geom_view_.size());
  return edge_geom_view_[static_cast<size_t>(e)];
}

const RoadNetwork::EdgeEndpoints& RoadNetwork::edge_endpoints(
    EdgeId e) const {
  STMAKER_CHECK(e >= 0 && static_cast<size_t>(e) < edge_ends_view_.size());
  return edge_ends_view_[static_cast<size_t>(e)];
}

size_t RoadNetwork::Degree(NodeId id) const {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < nodes_.size());
  return undirected_degree_[id];
}

EdgeId RoadNetwork::FindEdgeBetween(NodeId a, NodeId b) const {
  for (const Adjacency& adj : OutEdges(a)) {
    if (adj.neighbor == b) return adj.edge;
  }
  return -1;
}

void RoadNetwork::AnnotateTurningPoints() {
  for (RoadNode& n : nodes_) {
    n.is_turning_point = undirected_degree_[n.id] != 2;
  }
}

void RoadNetwork::BuildSpatialIndex(double sample_step_m) {
  STMAKER_CHECK(sample_step_m > 0);
  edge_index_ = std::make_unique<GridIndex>(sample_step_m * 2.0);
  for (const RoadEdge& e : edges_) {
    const Vec2& a = nodes_[e.from].pos;
    const Vec2& b = nodes_[e.to].pos;
    int steps = std::max(1, static_cast<int>(e.length_m / sample_step_m));
    for (int s = 0; s <= steps; ++s) {
      double t = static_cast<double>(s) / steps;
      edge_index_->Insert(e.id, a + (b - a) * t);
    }
  }
  // Queries usually follow immediately; pack the adjacency block now so
  // the first routed request doesn't pay the finalize.
  if (csr_dirty_.load(std::memory_order_acquire)) FinalizeAdjacency();
}

double RoadNetwork::DistanceToEdge(const Vec2& p, EdgeId e) const {
  STMAKER_CHECK(e >= 0 && static_cast<size_t>(e) < edge_geom_view_.size());
  const EdgeGeometry& g = edge_geom_view_[static_cast<size_t>(e)];
  return PointSegmentDistance(p, g.a, g.b);
}

void RoadNetwork::CollectEdgesWithin(
    const Vec2& p, double radius,
    std::vector<std::pair<double, EdgeId>>* out) const {
  // Sample points are at most (sample step) away from the true geometry,
  // so widen the index probe a little and verify with exact distances.
  std::vector<int64_t>& probe = ProbeBuffer();
  probe.clear();
  edge_index_->AppendWithinRadius(p, radius * 1.5 + 60.0, &probe);
  DedupStamps& stamps = Stamps();
  const uint64_t epoch = stamps.Begin(edges_.size());
  for (int64_t id : probe) {
    if (!stamps.FirstVisit(id, epoch)) continue;
    const EdgeGeometry& g = edge_geom_view_[static_cast<size_t>(id)];
    double d = PointSegmentDistance(p, g.a, g.b);
    if (d <= radius) out->push_back({d, id});
  }
}

EdgeId RoadNetwork::NearestEdge(const Vec2& p, double max_radius) const {
  if (edge_index_ == nullptr) return -1;
  std::vector<int64_t>& probe = ProbeBuffer();
  probe.clear();
  edge_index_->AppendWithinRadius(p, max_radius, &probe);
  DedupStamps& stamps = Stamps();
  const uint64_t epoch = stamps.Begin(edges_.size());
  EdgeId best = -1;
  double best_d = max_radius;
  for (int64_t id : probe) {
    if (!stamps.FirstVisit(id, epoch)) continue;
    double d = DistanceToEdge(p, id);
    if (d <= best_d) {
      best_d = d;
      best = id;
    }
  }
  return best;
}

std::vector<EdgeId> RoadNetwork::EdgesNear(const Vec2& p,
                                           double radius) const {
  std::vector<EdgeId> out;
  if (edge_index_ == nullptr) return out;
  std::vector<std::pair<double, EdgeId>> scored;
  CollectEdgesWithin(p, radius, &scored);
  out.reserve(scored.size());
  for (const auto& [d, id] : scored) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

Result<RoadNetwork> RoadNetwork::AdoptMapped(
    std::vector<RoadNode> nodes, std::vector<RoadEdge> edges,
    std::span<const uint32_t> csr_offsets,
    std::span<const Adjacency> csr_entries,
    std::span<const EdgeGeometry> edge_geom,
    std::span<const EdgeEndpoints> edge_ends) {
  const size_t n = nodes.size();
  const size_t m = edges.size();
  auto fail = [](const std::string& what) {
    return Status::InvalidArgument("container road network: " + what);
  };
  for (size_t i = 0; i < n; ++i) {
    if (nodes[i].id != static_cast<NodeId>(i)) {
      return fail("node ids must be dense");
    }
  }
  if (edge_geom.size() != m || edge_ends.size() != m) {
    return fail("edge geometry/endpoint array size mismatch");
  }
  size_t expected_entries = 0;
  for (size_t i = 0; i < m; ++i) {
    RoadEdge& e = edges[i];
    if (e.id != static_cast<EdgeId>(i)) return fail("edge ids must be dense");
    if (e.from < 0 || static_cast<size_t>(e.from) >= n || e.to < 0 ||
        static_cast<size_t>(e.to) >= n || e.from == e.to) {
      return fail("edge endpoints out of range");
    }
    if (e.width_m <= 0) return fail("non-positive edge width");
    // Derived exactly as AddEdge derives it, so both load paths agree
    // bit-for-bit.
    e.length_m = Distance(nodes[e.from].pos, nodes[e.to].pos);
    const EdgeGeometry& g = edge_geom[i];
    if (g.a.x != nodes[e.from].pos.x || g.a.y != nodes[e.from].pos.y ||
        g.b.x != nodes[e.to].pos.x || g.b.y != nodes[e.to].pos.y) {
      return fail("edge geometry disagrees with node positions");
    }
    if (edge_ends[i].from != static_cast<int32_t>(e.from) ||
        edge_ends[i].to != static_cast<int32_t>(e.to)) {
      return fail("edge endpoint array disagrees with edge list");
    }
    expected_entries +=
        e.direction == TrafficDirection::kTwoWay ? 2 : 1;
  }
  if (csr_offsets.size() != n + 1 || (n > 0 && csr_offsets[0] != 0) ||
      (csr_offsets.empty() ? csr_entries.size() != 0
                           : csr_offsets[n] != csr_entries.size()) ||
      csr_entries.size() != expected_entries) {
    return fail("CSR offsets disagree with the edge list");
  }
  // Every directed traversal option must appear exactly once, attached to
  // the right node: a corrupt adjacency block is rejected, never adopted.
  std::vector<uint8_t> fwd_seen(m, 0);
  std::vector<uint8_t> bwd_seen(m, 0);
  for (size_t u = 0; u < n; ++u) {
    if (csr_offsets[u] > csr_offsets[u + 1]) {
      return fail("CSR offsets are not monotonic");
    }
    for (uint32_t i = csr_offsets[u]; i < csr_offsets[u + 1]; ++i) {
      const Adjacency& adj = csr_entries[i];
      if (adj.edge < 0 || static_cast<size_t>(adj.edge) >= m ||
          adj.neighbor < 0 || static_cast<size_t>(adj.neighbor) >= n) {
        return fail("CSR entry out of range");
      }
      const RoadEdge& e = edges[static_cast<size_t>(adj.edge)];
      if (adj.forward) {
        if (e.from != static_cast<NodeId>(u) || e.to != adj.neighbor ||
            fwd_seen[static_cast<size_t>(adj.edge)]++ != 0) {
          return fail("CSR forward entry disagrees with its edge");
        }
      } else {
        if (e.direction != TrafficDirection::kTwoWay ||
            e.to != static_cast<NodeId>(u) || e.from != adj.neighbor ||
            bwd_seen[static_cast<size_t>(adj.edge)]++ != 0) {
          return fail("CSR backward entry disagrees with its edge");
        }
      }
    }
  }

  RoadNetwork net;
  net.nodes_ = std::move(nodes);
  net.edges_ = std::move(edges);
  net.undirected_degree_.assign(n, 0);
  for (const RoadEdge& e : net.edges_) {
    net.undirected_degree_[e.from]++;
    net.undirected_degree_[e.to]++;
  }
  net.edge_geom_view_ = edge_geom;
  net.edge_ends_view_ = edge_ends;
  net.csr_offsets_view_ = csr_offsets;
  net.csr_entries_view_ = csr_entries;
  net.adopted_ = true;
  net.csr_dirty_.store(false, std::memory_order_release);
  net.AnnotateTurningPoints();
  net.BuildSpatialIndex();
  return net;
}

void RoadNetwork::ClosestEdges(
    const Vec2& p, double radius, size_t max_count,
    std::vector<std::pair<double, EdgeId>>* out) const {
  if (edge_index_ == nullptr || max_count == 0) return;
  const size_t base = out->size();
  // Expanding search: most fixes sit on or next to a road, so a probe at a
  // third of the radius usually already yields max_count candidates — and
  // in dense cores it touches an order of magnitude fewer index cells. The
  // result is exact: if k candidates exist within r' <= r, the k closest
  // within r all lie within r' as well, so escalation is only needed when
  // the small probe comes up short.
  const double first = radius / 3.0;
  CollectEdgesWithin(p, first, out);
  if (out->size() - base < max_count) {
    out->resize(base);
    CollectEdgesWithin(p, radius, out);
  }
  // Sort by (distance, id): bit-identical to the full-radius scan order.
  std::sort(out->begin() + base, out->end());
  if (out->size() - base > max_count) out->resize(base + max_count);
}

}  // namespace stmaker
