#include "roadnet/map_matcher.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace stmaker {

MapMatcher::MapMatcher(const RoadNetwork* network,
                       const MapMatchOptions& options)
    : network_(network), options_(options) {
  STMAKER_CHECK(network != nullptr);
}

namespace {

bool EdgesConnected(const RoadNetwork& net, EdgeId a, EdgeId b) {
  const RoadEdge& ea = net.edge(a);
  const RoadEdge& eb = net.edge(b);
  return ea.from == eb.from || ea.from == eb.to || ea.to == eb.from ||
         ea.to == eb.to;
}

}  // namespace

std::vector<EdgeId> MapMatcher::Match(const std::vector<Vec2>& points) const {
  // A null context never fails, so the unwrap is safe.
  Result<std::vector<EdgeId>> matched = Match(points, nullptr);
  STMAKER_CHECK(matched.ok());
  return std::move(matched).value();
}

Result<std::vector<EdgeId>> MapMatcher::Match(const std::vector<Vec2>& points,
                                              const RequestContext* ctx) const {
  const RoadNetwork& net = *network_;
  const size_t n = points.size();
  std::vector<EdgeId> result(n, -1);
  if (n == 0) return result;
  STMAKER_RETURN_IF_ERROR(CheckContext(ctx));
  static Counter& matches =
      MetricsRegistry::Global().counter("roadnet.map_match.calls");
  static Counter& matched_points =
      MetricsRegistry::Global().counter("roadnet.map_match.points");
  static Histogram& latency =
      MetricsRegistry::Global().histogram("roadnet.map_match_ms");
  matches.Increment();
  matched_points.Increment(n);
  ScopedSpan span(TraceOf(ctx), "map_match", &latency);
  CancelCheck check(ctx);

  // Candidate edges and their emission costs, per point.
  std::vector<std::vector<EdgeId>> cand(n);
  std::vector<std::vector<double>> emit(n);
  for (size_t i = 0; i < n; ++i) {
    STMAKER_RETURN_IF_ERROR(check.Tick());
    std::vector<EdgeId> near =
        net.EdgesNear(points[i], options_.candidate_radius_m);
    // Keep the closest max_candidates edges.
    std::vector<std::pair<double, EdgeId>> scored;
    scored.reserve(near.size());
    for (EdgeId e : near) {
      scored.emplace_back(net.DistanceToEdge(points[i], e), e);
    }
    std::sort(scored.begin(), scored.end());
    size_t keep = std::min<size_t>(scored.size(),
                                   static_cast<size_t>(options_.max_candidates));
    for (size_t k = 0; k < keep; ++k) {
      double d = scored[k].first / options_.gps_sigma_m;
      cand[i].push_back(scored[k].second);
      emit[i].push_back(d * d);
    }
  }

  // Viterbi over contiguous runs of points that have candidates.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  size_t i = 0;
  while (i < n) {
    if (cand[i].empty()) {
      ++i;
      continue;
    }
    size_t run_end = i;
    while (run_end < n && !cand[run_end].empty()) ++run_end;

    std::vector<std::vector<double>> score(run_end - i);
    std::vector<std::vector<int>> back(run_end - i);
    score[0] = emit[i];
    back[0].assign(cand[i].size(), -1);
    for (size_t t = i + 1; t < run_end; ++t) {
      STMAKER_RETURN_IF_ERROR(check.Tick());
      size_t r = t - i;
      score[r].assign(cand[t].size(), kInf);
      back[r].assign(cand[t].size(), -1);
      for (size_t j = 0; j < cand[t].size(); ++j) {
        for (size_t p = 0; p < cand[t - 1].size(); ++p) {
          double trans;
          if (cand[t][j] == cand[t - 1][p]) {
            trans = 0;
          } else if (EdgesConnected(net, cand[t][j], cand[t - 1][p])) {
            trans = options_.adjacency_cost;
          } else {
            trans = options_.jump_cost;
          }
          double s = score[r - 1][p] + trans + emit[t][j];
          if (s < score[r][j]) {
            score[r][j] = s;
            back[r][j] = static_cast<int>(p);
          }
        }
      }
    }
    // Backtrack.
    size_t last = run_end - i - 1;
    int best = 0;
    for (size_t j = 1; j < score[last].size(); ++j) {
      if (score[last][j] < score[last][best]) best = static_cast<int>(j);
    }
    for (size_t r = run_end - i; r-- > 0;) {
      result[i + r] = cand[i + r][best];
      if (r > 0) best = back[r][best];
    }
    i = run_end;
  }
  return result;
}

}  // namespace stmaker
