#include "roadnet/map_matcher.h"

#include <algorithm>
#include <limits>

#include "common/arena.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace stmaker {

MapMatcher::MapMatcher(const RoadNetwork* network,
                       const MapMatchOptions& options)
    : network_(network), options_(options) {
  STMAKER_CHECK(network != nullptr);
}

namespace {

/// Segment-level connectivity: the edges share an endpoint. Works off the
/// packed endpoint records so the check never loads a RoadEdge (whose
/// std::string name would drag a second cache line into the hot loop).
inline bool EdgesConnected(const RoadNetwork::EdgeEndpoints& a,
                           const RoadNetwork::EdgeEndpoints& b) {
  return a.from == b.from || a.from == b.to || a.to == b.from || a.to == b.to;
}

/// Reused (distance, edge) buffer for the per-fix candidate search.
std::vector<std::pair<double, EdgeId>>& ScoredBuffer() {
  thread_local std::vector<std::pair<double, EdgeId>> buffer;
  return buffer;
}

}  // namespace

std::vector<EdgeId> MapMatcher::Match(const std::vector<Vec2>& points) const {
  // A null context never fails, so the unwrap is safe.
  Result<std::vector<EdgeId>> matched = Match(points, nullptr);
  STMAKER_CHECK(matched.ok());
  return std::move(matched).value();
}

Result<std::vector<EdgeId>> MapMatcher::Match(const std::vector<Vec2>& points,
                                              const RequestContext* ctx) const {
  const RoadNetwork& net = *network_;
  const size_t n = points.size();
  std::vector<EdgeId> result(n, -1);
  if (n == 0) return result;
  STMAKER_RETURN_IF_ERROR(CheckContext(ctx));
  static Counter& matches =
      MetricsRegistry::Global().counter("roadnet.map_match.calls");
  static Counter& matched_points =
      MetricsRegistry::Global().counter("roadnet.map_match.points");
  static Histogram& latency =
      MetricsRegistry::Global().histogram("roadnet.map_match_ms");
  matches.Increment();
  matched_points.Increment(n);
  ScopedSpan span(TraceOf(ctx), "map_match", &latency);
  CancelCheck check(ctx);

  // All scratch below lives in the thread's arena and is released when this
  // request returns; steady-state matching allocates nothing on the heap.
  ArenaScope scope(Arena::ThreadLocal());
  Arena* arena = &scope.arena();

  // Candidate edges, emission costs, and endpoint records per point, packed
  // flat: point i's candidates live at [cand_start[i], cand_start[i+1]).
  const size_t max_c = static_cast<size_t>(options_.max_candidates);
  ArenaVector<uint32_t> cand_start{ArenaAllocator<uint32_t>(arena)};
  ArenaVector<EdgeId> cand_edge{ArenaAllocator<EdgeId>(arena)};
  ArenaVector<double> emit{ArenaAllocator<double>(arena)};
  ArenaVector<RoadNetwork::EdgeEndpoints> cand_ends{
      ArenaAllocator<RoadNetwork::EdgeEndpoints>(arena)};
  cand_start.reserve(n + 1);
  cand_edge.reserve(n * max_c);
  emit.reserve(n * max_c);
  cand_ends.reserve(n * max_c);

  std::vector<std::pair<double, EdgeId>>& scored = ScoredBuffer();
  cand_start.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    STMAKER_RETURN_IF_ERROR(check.Tick());
    scored.clear();
    // Exact k-closest under the radius: identical candidate set and order
    // to the old sort-all-of-EdgesNear scan, found with a pruned search.
    net.ClosestEdges(points[i], options_.candidate_radius_m, max_c, &scored);
    for (const auto& [d, e] : scored) {
      // Divide, don't multiply by a reciprocal: emission costs must stay
      // bit-identical to the pre-CSR matcher (golden corpus).
      double z = d / options_.gps_sigma_m;
      cand_edge.push_back(e);
      emit.push_back(z * z);
      cand_ends.push_back(net.edge_endpoints(e));
    }
    cand_start.push_back(static_cast<uint32_t>(cand_edge.size()));
  }

  // Viterbi over contiguous runs of points that have candidates. Rolling
  // score rows; the backpointer matrix is packed with the same offsets as
  // the candidate arrays.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ArenaVector<double> prev_score{ArenaAllocator<double>(arena)};
  ArenaVector<double> curr_score{ArenaAllocator<double>(arena)};
  ArenaVector<int32_t> back{ArenaAllocator<int32_t>(arena)};
  size_t i = 0;
  while (i < n) {
    if (cand_start[i + 1] == cand_start[i]) {
      ++i;
      continue;
    }
    size_t run_end = i;
    while (run_end < n && cand_start[run_end + 1] != cand_start[run_end]) {
      ++run_end;
    }
    const uint32_t run_base = cand_start[i];

    back.assign(cand_start[run_end] - run_base, -1);
    prev_score.assign(emit.begin() + cand_start[i],
                      emit.begin() + cand_start[i + 1]);
    for (size_t t = i + 1; t < run_end; ++t) {
      STMAKER_RETURN_IF_ERROR(check.Tick());
      const uint32_t pb = cand_start[t - 1];
      const uint32_t tb = cand_start[t];
      const size_t prev_cnt = cand_start[t] - pb;
      const size_t curr_cnt = cand_start[t + 1] - tb;
      curr_score.assign(curr_cnt, kInf);
      for (size_t j = 0; j < curr_cnt; ++j) {
        const EdgeId ej = cand_edge[tb + j];
        const RoadNetwork::EdgeEndpoints& endj = cand_ends[tb + j];
        const double e_j = emit[tb + j];
        double best_s = kInf;
        int32_t best_p = -1;
        for (size_t p = 0; p < prev_cnt; ++p) {
          const double p_s = prev_score[p];
          // Transitions are non-negative and FP addition rounds
          // monotonically, so a predecessor whose transition-free cost
          // already meets the incumbent cannot strictly improve it; the
          // recurrence only updates on strict improvement, so skipping
          // preserves the first-argmin tie-break exactly and defers the
          // connectivity check to predecessors that can still win.
          if (p_s + e_j >= best_s) continue;
          double trans;
          if (ej == cand_edge[pb + p]) {
            trans = 0;
          } else if (EdgesConnected(endj, cand_ends[pb + p])) {
            trans = options_.adjacency_cost;
          } else {
            trans = options_.jump_cost;
          }
          // Summation order matters: (score + trans) + emit, bit-identical
          // to the pre-CSR recurrence (golden corpus).
          double s = p_s + trans + e_j;
          if (s < best_s) {
            best_s = s;
            best_p = static_cast<int32_t>(p);
          }
        }
        curr_score[j] = best_s;
        back[tb + j - run_base] = best_p;
      }
      prev_score.swap(curr_score);
    }
    // Backtrack.
    int32_t best = 0;
    for (size_t j = 1; j < prev_score.size(); ++j) {
      if (prev_score[j] < prev_score[best]) best = static_cast<int32_t>(j);
    }
    for (size_t t = run_end; t-- > i;) {
      result[t] = cand_edge[cand_start[t] + best];
      if (t > i) best = back[cand_start[t] + best - run_base];
    }
    i = run_end;
  }
  return result;
}

}  // namespace stmaker
