#ifndef STMAKER_ROADNET_MAP_GENERATOR_H_
#define STMAKER_ROADNET_MAP_GENERATOR_H_

/// \file
/// Deterministic synthetic-city builder: grid blocks, arterials,
/// one-way conversions, and edge removals.

#include <cstdint>
#include <string>
#include <vector>

#include "geo/bounding_box.h"
#include "roadnet/road_network.h"

namespace stmaker {

/// Parameters of the synthetic city. Defaults produce a ~12 km × 12 km core
/// with highway/express rings, arterial grid, and minor streets — a stand-in
/// for the paper's commercial map of Beijing (see DESIGN.md §2).
struct MapGeneratorOptions {
  int blocks_x = 24;            ///< Number of city blocks east-west.
  int blocks_y = 24;            ///< Number of city blocks north-south.
  double block_size_m = 500.0;  ///< Block pitch in meters.
  int arterial_every = 4;       ///< Every Nth grid line is a national road.
  double position_jitter_m = 20.0;  ///< Gaussian jitter of intersections.
  double one_way_fraction = 0.3;    ///< Of village/feeder streets.
  double removal_fraction = 0.08;   ///< Minor street segments removed for
                                    ///< realism (keeps the graph connected).
  uint64_t seed = 42;               ///< Master seed; generation is
                                    ///< deterministic given the options.
};

/// A generated city: the road graph plus its extent.
struct GeneratedMap {
  RoadNetwork network;
  BoundingBox extent;
};

/// \brief Deterministic synthetic-city builder.
///
/// Layout: a blocks_x × blocks_y grid. The outer boundary forms a highway
/// ring (grade 1); the lines one quarter in from each side form an express
/// ring (grade 2); every `arterial_every`-th line is a national road
/// (grade 3), with provincial roads (grade 4) between arterials; remaining
/// lines cycle through country/village/feeder grades. A fraction of minor
/// segments is removed (connectivity-preserving) and some minor streets are
/// one-way. Every line carries a name drawn from a fixed lexicon, so
/// summaries read like the paper's examples ("Suzhou Road", "Zhichun Road").
class MapGenerator {
 public:
  explicit MapGenerator(const MapGeneratorOptions& options);

  /// Builds the city. Also annotates turning points and builds the spatial
  /// index, so the result is immediately usable.
  GeneratedMap Generate() const;

  /// The name lexicon used for roads (exposed so that POI naming can reuse
  /// locality names).
  static const std::vector<std::string>& NameLexicon();

 private:
  MapGeneratorOptions options_;
};

}  // namespace stmaker

#endif  // STMAKER_ROADNET_MAP_GENERATOR_H_
