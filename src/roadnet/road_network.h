#ifndef STMAKER_ROADNET_ROAD_NETWORK_H_
#define STMAKER_ROADNET_ROAD_NETWORK_H_

/// \file
/// In-memory road graph: nodes, edges, and adjacency queries.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/grid_index.h"
#include "geo/vec2.h"
#include "roadnet/road_types.h"

namespace stmaker {

using NodeId = int64_t;
using EdgeId = int64_t;

/// An intersection or shape point of the road graph.
struct RoadNode {
  NodeId id = -1;
  Vec2 pos;
  /// True when the node is a genuine turning point of the network (degree
  /// != 2 or a sharp bend); turning points become landmark candidates.
  bool is_turning_point = false;
};

/// A road segment between two nodes, carrying the routing attributes the
/// paper's Table III consumes: grade, width, and traffic direction.
struct RoadEdge {
  EdgeId id = -1;
  NodeId from = -1;
  NodeId to = -1;
  RoadGrade grade = RoadGrade::kCountryRoad;
  double width_m = 10.0;
  TrafficDirection direction = TrafficDirection::kTwoWay;
  std::string name;
  double length_m = 0;
  /// Persistent route-choice bias (~1.0): captures road quality differences
  /// (pavement, signal timing, congestion reputation) that make all drivers
  /// break ties between geometrically equivalent paths the same way. Grid
  /// networks are massively path-degenerate; without a shared tie-breaker no
  /// "popular route" can emerge.
  double cost_bias = 1.0;
};

/// One traversal option out of a node.
struct Adjacency {
  EdgeId edge = -1;
  NodeId neighbor = -1;
  /// True when traversal goes from edge.from to edge.to.
  bool forward = true;
};

/// \brief In-memory road graph (the "commercial digital map" substrate).
///
/// Nodes and edges are stored in dense arrays indexed by their ids, which
/// are assigned contiguously by AddNode/AddEdge. One-way edges are traversable
/// only from `from` to `to`; two-way edges both ways. After construction,
/// BuildSpatialIndex() enables nearest-edge queries for map matching.
class RoadNetwork {
 public:
  RoadNetwork() = default;
  RoadNetwork(RoadNetwork&&) = default;
  RoadNetwork& operator=(RoadNetwork&&) = default;
  RoadNetwork(const RoadNetwork&) = delete;
  RoadNetwork& operator=(const RoadNetwork&) = delete;

  /// Adds a node at `pos`; returns its id.
  NodeId AddNode(const Vec2& pos);

  /// Adds an edge between existing nodes. The length is computed from the
  /// endpoint positions. Returns the edge id, or an error for bad node ids
  /// or a self-loop.
  Result<EdgeId> AddEdge(NodeId from, NodeId to, RoadGrade grade,
                         double width_m, TrafficDirection direction,
                         std::string name);

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  const RoadNode& node(NodeId id) const;
  RoadNode& mutable_node(NodeId id);
  const RoadEdge& edge(EdgeId id) const;
  RoadEdge& mutable_edge(EdgeId id);

  const std::vector<RoadNode>& nodes() const { return nodes_; }
  const std::vector<RoadEdge>& edges() const { return edges_; }

  /// Traversal options leaving `id` (respects one-way restrictions).
  const std::vector<Adjacency>& OutEdges(NodeId id) const;

  /// Out-degree plus in-degree as seen by the undirected topology.
  size_t Degree(NodeId id) const;

  /// The edge joining `a` and `b` traversable from `a`, or -1.
  EdgeId FindEdgeBetween(NodeId a, NodeId b) const;

  /// Marks nodes whose undirected degree != 2 as turning points. Called by
  /// the map generator after construction; idempotent.
  void AnnotateTurningPoints();

  /// Prepares the spatial index used by NearestEdge(). Must be re-called if
  /// edges are added afterwards. `sample_step_m` controls the density of the
  /// edge sampling in the index.
  void BuildSpatialIndex(double sample_step_m = 50.0);

  /// Nearest edge to `p` by true point-to-segment distance, searching items
  /// within `max_radius` meters. Returns -1 if none (or index not built).
  EdgeId NearestEdge(const Vec2& p, double max_radius) const;

  /// Edges whose geometry passes within `radius` of `p`.
  std::vector<EdgeId> EdgesNear(const Vec2& p, double radius) const;

  /// Distance from `p` to the segment geometry of `e`.
  double DistanceToEdge(const Vec2& p, EdgeId e) const;

 private:
  std::vector<RoadNode> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
  std::vector<size_t> undirected_degree_;
  std::unique_ptr<GridIndex> edge_index_;
};

}  // namespace stmaker

#endif  // STMAKER_ROADNET_ROAD_NETWORK_H_
