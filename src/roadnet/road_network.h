#ifndef STMAKER_ROADNET_ROAD_NETWORK_H_
#define STMAKER_ROADNET_ROAD_NETWORK_H_

/// \file
/// In-memory road graph: nodes, edges, and adjacency queries over a
/// cache-friendly CSR (compressed sparse row) layout.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "geo/grid_index.h"
#include "geo/vec2.h"
#include "roadnet/road_types.h"

namespace stmaker {

using NodeId = int64_t;
using EdgeId = int64_t;

/// An intersection or shape point of the road graph.
struct RoadNode {
  NodeId id = -1;
  Vec2 pos;
  /// True when the node is a genuine turning point of the network (degree
  /// != 2 or a sharp bend); turning points become landmark candidates.
  bool is_turning_point = false;
};

/// A road segment between two nodes, carrying the routing attributes the
/// paper's Table III consumes: grade, width, and traffic direction.
struct RoadEdge {
  EdgeId id = -1;
  NodeId from = -1;
  NodeId to = -1;
  RoadGrade grade = RoadGrade::kCountryRoad;
  double width_m = 10.0;
  TrafficDirection direction = TrafficDirection::kTwoWay;
  std::string name;
  double length_m = 0;
  /// Persistent route-choice bias (~1.0): captures road quality differences
  /// (pavement, signal timing, congestion reputation) that make all drivers
  /// break ties between geometrically equivalent paths the same way. Grid
  /// networks are massively path-degenerate; without a shared tie-breaker no
  /// "popular route" can emerge.
  double cost_bias = 1.0;
};

/// One traversal option out of a node.
struct Adjacency {
  EdgeId edge = -1;
  NodeId neighbor = -1;
  /// True when traversal goes from edge.from to edge.to.
  bool forward = true;
};

/// \brief In-memory road graph (the "commercial digital map" substrate).
///
/// Nodes and edges are stored in dense arrays indexed by their ids, which
/// are assigned contiguously by AddNode/AddEdge. One-way edges are traversable
/// only from `from` to `to`; two-way edges both ways. After construction,
/// BuildSpatialIndex() enables nearest-edge queries for map matching.
///
/// Layout (DESIGN.md §13): adjacency lives in one CSR block — an offset
/// array indexed by node plus a packed entry array — so graph searches
/// (Dijkstra/A*, the CH build, the matcher's connectivity checks) stream
/// contiguous memory instead of chasing one heap vector per node. Edge
/// geometry and endpoints are mirrored into struct-of-arrays
/// (`edge_geometry`/`edge_endpoints`) so distance scans never touch the
/// string-bearing RoadEdge records. The CSR block is finalized lazily on
/// the first query after a mutation; construction (AddNode/AddEdge) is
/// single-threaded, queries afterwards are freely concurrent.
class RoadNetwork {
 public:
  /// Contiguous view over one node's packed traversal options.
  using AdjacencySpan = std::span<const Adjacency>;

  /// Endpoint positions of one edge, packed for distance scans.
  struct EdgeGeometry {
    Vec2 a;  ///< Position of `from`.
    Vec2 b;  ///< Position of `to`.
  };

  /// Endpoint node ids of one edge, packed for connectivity checks.
  /// 32-bit on purpose: node ids are dense, and halving the record doubles
  /// how many transition checks fit in a cache line.
  struct EdgeEndpoints {
    int32_t from = -1;
    int32_t to = -1;
  };

  RoadNetwork() = default;

  /// \brief Builds a network whose four hot arrays — CSR offsets/entries,
  /// edge geometry, edge endpoints — ALIAS caller-owned memory (a mapped
  /// model container) instead of being copied to the heap. `nodes`/`edges`
  /// stay materialized (they carry strings); derived state (lengths,
  /// degrees, turning points, the spatial index) is recomputed exactly as
  /// the CSV load path does, and the aliased arrays are cross-validated
  /// against the edge list so a corrupt container cannot produce an
  /// inconsistent graph.
  ///
  /// The caller must keep the aliased memory alive for the network's whole
  /// lifetime (ModelSnapshot pins the mapping for exactly this reason).
  /// An adopted network is immutable: AddNode/AddEdge CHECK-fail.
  ///
  /// \param nodes Materialized nodes, ids dense (node i has id i).
  /// \param edges Materialized edges, ids dense; `length_m` is recomputed.
  /// \param csr_offsets Aliased CSR row starts (nodes + 1 entries).
  /// \param csr_entries Aliased packed adjacency entries.
  /// \param edge_geom Aliased per-edge endpoint positions.
  /// \param edge_ends Aliased per-edge 32-bit endpoint ids.
  /// \return The adopted network, or kInvalidArgument naming the
  /// inconsistency.
  static Result<RoadNetwork> AdoptMapped(
      std::vector<RoadNode> nodes, std::vector<RoadEdge> edges,
      std::span<const uint32_t> csr_offsets,
      std::span<const Adjacency> csr_entries,
      std::span<const EdgeGeometry> edge_geom,
      std::span<const EdgeEndpoints> edge_ends);

  RoadNetwork(RoadNetwork&& other) noexcept;
  RoadNetwork& operator=(RoadNetwork&& other) noexcept;
  RoadNetwork(const RoadNetwork&) = delete;
  RoadNetwork& operator=(const RoadNetwork&) = delete;

  /// Adds a node at `pos`; returns its id.
  NodeId AddNode(const Vec2& pos);

  /// Adds an edge between existing nodes. The length is computed from the
  /// endpoint positions. Returns the edge id, or an error for bad node ids
  /// or a self-loop.
  Result<EdgeId> AddEdge(NodeId from, NodeId to, RoadGrade grade,
                         double width_m, TrafficDirection direction,
                         std::string name);

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  const RoadNode& node(NodeId id) const;
  RoadNode& mutable_node(NodeId id);
  const RoadEdge& edge(EdgeId id) const;
  RoadEdge& mutable_edge(EdgeId id);

  const std::vector<RoadNode>& nodes() const { return nodes_; }
  const std::vector<RoadEdge>& edges() const { return edges_; }

  /// Traversal options leaving `id` (respects one-way restrictions), as a
  /// view into the packed CSR entry array. The view is invalidated by the
  /// next AddEdge.
  AdjacencySpan OutEdges(NodeId id) const;

  /// Endpoint positions of `e` (same values as node(edge.from/to).pos,
  /// packed contiguously).
  const EdgeGeometry& edge_geometry(EdgeId e) const;

  /// Endpoint node ids of `e`, packed contiguously.
  const EdgeEndpoints& edge_endpoints(EdgeId e) const;

  /// Out-degree plus in-degree as seen by the undirected topology.
  size_t Degree(NodeId id) const;

  /// The edge joining `a` and `b` traversable from `a`, or -1.
  EdgeId FindEdgeBetween(NodeId a, NodeId b) const;

  /// Marks nodes whose undirected degree != 2 as turning points. Called by
  /// the map generator after construction; idempotent.
  void AnnotateTurningPoints();

  /// Prepares the spatial index used by NearestEdge(). Must be re-called if
  /// edges are added afterwards. `sample_step_m` controls the density of the
  /// edge sampling in the index.
  void BuildSpatialIndex(double sample_step_m = 50.0);

  /// Nearest edge to `p` by true point-to-segment distance, searching items
  /// within `max_radius` meters. Returns -1 if none (or index not built).
  EdgeId NearestEdge(const Vec2& p, double max_radius) const;

  /// Edges whose geometry passes within `radius` of `p`.
  std::vector<EdgeId> EdgesNear(const Vec2& p, double radius) const;

  /// Up to `max_count` closest edges within `radius` of `p`, appended to
  /// `*out` as (distance, edge) sorted ascending by (distance, id). The
  /// result is exactly the `max_count` head of the sorted EdgesNear(radius)
  /// scan, but found with an expanding search that probes a fraction of the
  /// index in dense areas (where the full-radius scan is the map-match p99).
  void ClosestEdges(const Vec2& p, double radius, size_t max_count,
                    std::vector<std::pair<double, EdgeId>>* out) const;

  /// Distance from `p` to the segment geometry of `e`.
  double DistanceToEdge(const Vec2& p, EdgeId e) const;

  /// The packed CSR row-start array (finalizes first). One entry per node
  /// plus a terminator; invalidated by the next AddEdge.
  /// \return View of NumNodes() + 1 offsets.
  std::span<const uint32_t> csr_offsets() const;

  /// The packed CSR adjacency entries (finalizes first); invalidated by
  /// the next AddEdge.
  /// \return View of all directed traversal options, grouped by node.
  std::span<const Adjacency> csr_entries() const;

  /// Per-edge endpoint positions, indexed by edge id.
  /// \return View of NumEdges() geometry records.
  std::span<const EdgeGeometry> edge_geometries() const {
    return edge_geom_view_;
  }

  /// Per-edge packed endpoint ids, indexed by edge id.
  /// \return View of NumEdges() endpoint records.
  std::span<const EdgeEndpoints> edge_endpoints_all() const {
    return edge_ends_view_;
  }

  /// True when the hot arrays alias external memory (AdoptMapped).
  bool adopted() const { return adopted_; }

 private:
  /// Rebuilds the CSR adjacency block from `pending_` (entries added since
  /// the last finalize). Called lazily from OutEdges under `csr_mu_`;
  /// logically const (the directed adjacency it materializes is fixed by
  /// the AddEdge history).
  void FinalizeAdjacency() const;

  /// Deduplicating exact-distance scan over one spatial-index probe.
  /// Appends verified (distance, edge) pairs with distance <= `radius`.
  void CollectEdgesWithin(const Vec2& p, double radius,
                          std::vector<std::pair<double, EdgeId>>* out) const;

  std::vector<RoadNode> nodes_;
  std::vector<RoadEdge> edges_;
  std::vector<size_t> undirected_degree_;

  // Struct-of-arrays mirrors, appended by AddEdge (positions are fixed once
  // an edge references them — length_m already bakes them in).
  std::vector<EdgeGeometry> edge_geom_;
  std::vector<EdgeEndpoints> edge_ends_;

  // Every reader goes through these views. For a built network they alias
  // the vectors above (refreshed after each mutation); for an adopted one
  // they alias the mapped container and the vectors stay empty. Vector
  // moves keep heap buffers, so the views survive RoadNetwork moves.
  std::span<const EdgeGeometry> edge_geom_view_;
  std::span<const EdgeEndpoints> edge_ends_view_;
  mutable std::span<const uint32_t> csr_offsets_view_;
  mutable std::span<const Adjacency> csr_entries_view_;
  /// True when the views alias external (mapped) memory; mutation is
  /// forbidden and the CSR is final.
  bool adopted_ = false;

  // CSR adjacency: entries for node n live at
  // csr_entries_[csr_offsets_[n] .. csr_offsets_[n+1]), in AddEdge order.
  // Mutable + mutex: finalized lazily on first query after a mutation.
  mutable std::vector<uint32_t> csr_offsets_;
  mutable std::vector<Adjacency> csr_entries_;
  /// Directed entries recorded since the last finalize, in insertion order.
  mutable std::vector<std::pair<NodeId, Adjacency>> pending_;
  /// True when `pending_` holds entries (or nodes were added) not yet
  /// merged into the CSR block. Acquire/release pairs the lazy finalize
  /// with concurrent readers.
  mutable std::atomic<bool> csr_dirty_{false};
  mutable std::unique_ptr<std::mutex> csr_mu_ =
      std::make_unique<std::mutex>();

  std::unique_ptr<GridIndex> edge_index_;
};

}  // namespace stmaker

#endif  // STMAKER_ROADNET_ROAD_NETWORK_H_
