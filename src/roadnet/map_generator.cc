#include "roadnet/map_generator.h"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/random.h"
#include "common/strings.h"

namespace stmaker {

namespace {

// Pinyin-flavoured locality names echoing the paper's running examples.
const char* const kLexicon[] = {
    "Suzhou",    "Zhichun",   "Daoxiang",  "Haidian",   "Yuyuantan",
    "Zhongguancun", "Xizhimen", "Chaoyang", "Dongzhimen", "Wangjing",
    "Shangdi",   "Qinghe",    "Anzhen",    "Deshengmen", "Guomao",
    "Sanlitun",  "Jianguo",   "Fuxing",    "Changan",   "Pinganli",
    "Xuanwu",    "Chongwen",  "Liangma",   "Tuanjiehu", "Hepingli",
    "Andingmen", "Beitucheng", "Huixin",   "Datun",     "Olympic",
    "Lize",      "Caoqiao",   "Muxiyuan",  "Dahongmen", "Jiugong",
    "Yizhuang",  "Shijingshan", "Babaoshan", "Wukesong", "Gongzhufen",
    "Ganjiakou", "Baishiqiao", "Weigongcun", "Renmin",  "Minzu",
    "Xinjiekou", "Jishuitan", "Guloudajie", "Yonghegong", "Dongsi",
};

struct LineSpec {
  RoadGrade grade;
  std::string name;
};

}  // namespace

MapGenerator::MapGenerator(const MapGeneratorOptions& options)
    : options_(options) {
  STMAKER_CHECK(options.blocks_x >= 4 && options.blocks_y >= 4);
  STMAKER_CHECK(options.block_size_m > 0);
  STMAKER_CHECK(options.arterial_every >= 2);
}

const std::vector<std::string>& MapGenerator::NameLexicon() {
  static const std::vector<std::string>& lexicon =
      *new std::vector<std::string>(std::begin(kLexicon), std::end(kLexicon));
  return lexicon;
}

GeneratedMap MapGenerator::Generate() const {
  const int nx = options_.blocks_x;  // number of blocks; nx+1 grid lines.
  const int ny = options_.blocks_y;
  Random rng(options_.seed);

  // --- Assign a grade and a name to each grid line. ------------------------
  // Vertical line v (x = const) and horizontal line h (y = const).
  // Minor lines cycle country → village → feeder via a per-axis counter so
  // that every grade is represented regardless of how the arterial pattern
  // interleaves (a plain idx % 3 can systematically miss one grade).
  auto line_grade = [&](int idx, int n, int* minor_counter) -> RoadGrade {
    if (idx == 0 || idx == n) return RoadGrade::kHighway;  // outer ring
    if (idx == n / 4 || idx == n - n / 4) return RoadGrade::kExpressRoad;
    if (idx % options_.arterial_every == 0) return RoadGrade::kNationalRoad;
    if (idx % options_.arterial_every == options_.arterial_every / 2) {
      return RoadGrade::kProvincialRoad;
    }
    switch ((*minor_counter)++ % 3) {
      case 0:
        return RoadGrade::kCountryRoad;
      case 1:
        return RoadGrade::kVillageRoad;
      default:
        return RoadGrade::kFeederRoad;
    }
  };

  const std::vector<std::string>& lexicon = NameLexicon();
  size_t name_cursor = rng.UniformInt(lexicon.size());
  auto next_name = [&]() -> std::string {
    const std::string& base = lexicon[name_cursor % lexicon.size()];
    size_t round = name_cursor / lexicon.size();
    ++name_cursor;
    if (round == 0) return base;
    return base + " " + std::to_string(round + 1);
  };

  auto line_name = [&](int idx, int n, bool vertical,
                       RoadGrade grade) -> std::string {
    if (grade == RoadGrade::kHighway) {
      return vertical ? (idx == 0 ? "West Ring Highway" : "East Ring Highway")
                      : (idx == 0 ? "South Ring Highway"
                                  : "North Ring Highway");
    }
    if (grade == RoadGrade::kExpressRoad) {
      const char* side = vertical ? (idx < n / 2 ? "West" : "East")
                                  : (idx < n / 2 ? "South" : "North");
      return StrFormat("%s 2nd Ring Express Road", side);
    }
    const char* suffix = vertical ? "Road" : "Street";
    if (grade == RoadGrade::kNationalRoad) suffix = "Avenue";
    return next_name() + " " + suffix;
  };

  std::vector<LineSpec> v_lines(nx + 1);
  std::vector<LineSpec> h_lines(ny + 1);
  int v_minor = 0;
  int h_minor = 1;  // offset so the two axes interleave their minor grades
  for (int i = 0; i <= nx; ++i) {
    v_lines[i].grade = line_grade(i, nx, &v_minor);
    v_lines[i].name = line_name(i, nx, /*vertical=*/true, v_lines[i].grade);
  }
  for (int j = 0; j <= ny; ++j) {
    h_lines[j].grade = line_grade(j, ny, &h_minor);
    h_lines[j].name = line_name(j, ny, /*vertical=*/false, h_lines[j].grade);
  }

  // --- Nodes. ---------------------------------------------------------------
  GeneratedMap out;
  RoadNetwork& net = out.network;
  const double b = options_.block_size_m;
  const double ox = -nx * b / 2.0;  // center the city on the origin.
  const double oy = -ny * b / 2.0;
  std::vector<NodeId> grid(static_cast<size_t>((nx + 1) * (ny + 1)));
  auto grid_at = [&](int i, int j) -> NodeId& {
    return grid[static_cast<size_t>(j) * (nx + 1) + i];
  };
  for (int j = 0; j <= ny; ++j) {
    for (int i = 0; i <= nx; ++i) {
      double jx = rng.Normal(0, options_.position_jitter_m);
      double jy = rng.Normal(0, options_.position_jitter_m);
      // Keep ring roads geometrically clean.
      if (i == 0 || i == nx) jx = 0;
      if (j == 0 || j == ny) jy = 0;
      Vec2 pos{ox + i * b + jx, oy + j * b + jy};
      grid_at(i, j) = net.AddNode(pos);
      out.extent.Extend(pos);
    }
  }

  // --- Edges. ---------------------------------------------------------------
  // Direction decisions are per line so that a one-way street is one-way
  // along its whole run, alternating orientation like real urban grids.
  auto direction_for = [&](RoadGrade grade) -> TrafficDirection {
    bool minor = grade == RoadGrade::kVillageRoad ||
                 grade == RoadGrade::kFeederRoad;
    if (minor && rng.Bernoulli(options_.one_way_fraction)) {
      return TrafficDirection::kOneWay;
    }
    // Occasional one-way corridors among mid-grade roads (real cities run
    // one-way systems on arterials too); these are long enough for a route
    // to be modally one-way, which is what makes the traffic-direction
    // feature ever describable.
    bool mid = grade == RoadGrade::kProvincialRoad ||
               grade == RoadGrade::kCountryRoad;
    if (mid && rng.Bernoulli(options_.one_way_fraction * 0.6)) {
      return TrafficDirection::kOneWay;
    }
    return TrafficDirection::kTwoWay;
  };

  struct PendingEdge {
    NodeId a;
    NodeId b;
    RoadGrade grade;
    TrafficDirection dir;
    std::string name;
    bool minor;
  };
  std::vector<PendingEdge> pending;

  for (int i = 0; i <= nx; ++i) {
    TrafficDirection dir = direction_for(v_lines[i].grade);
    bool flip = rng.Bernoulli(0.5);
    for (int j = 0; j < ny; ++j) {
      NodeId a = grid_at(i, j);
      NodeId bnode = grid_at(i, j + 1);
      if (dir == TrafficDirection::kOneWay && flip) std::swap(a, bnode);
      bool minor = static_cast<int>(v_lines[i].grade) >= 5;
      pending.push_back({a, bnode, v_lines[i].grade, dir, v_lines[i].name,
                         minor});
    }
  }
  for (int j = 0; j <= ny; ++j) {
    TrafficDirection dir = direction_for(h_lines[j].grade);
    bool flip = rng.Bernoulli(0.5);
    for (int i = 0; i < nx; ++i) {
      NodeId a = grid_at(i, j);
      NodeId bnode = grid_at(i + 1, j);
      if (dir == TrafficDirection::kOneWay && flip) std::swap(a, bnode);
      bool minor = static_cast<int>(h_lines[j].grade) >= 5;
      pending.push_back({a, bnode, h_lines[j].grade, dir, h_lines[j].name,
                         minor});
    }
  }

  // Remove a fraction of minor segments for realism, but never disconnect
  // the graph: a removal is applied only if its endpoints remain connected
  // through other pending/undirected edges.
  std::vector<size_t> minor_indices;
  for (size_t k = 0; k < pending.size(); ++k) {
    if (pending[k].minor) minor_indices.push_back(k);
  }
  // Fisher–Yates shuffle with our deterministic RNG.
  for (size_t k = minor_indices.size(); k > 1; --k) {
    size_t r = rng.UniformInt(k);
    std::swap(minor_indices[k - 1], minor_indices[r]);
  }
  size_t target_removals = static_cast<size_t>(
      options_.removal_fraction * static_cast<double>(pending.size()));

  std::vector<bool> removed(pending.size(), false);
  // Undirected adjacency over pending edges for the connectivity check.
  auto connected_without = [&](size_t skip) -> bool {
    NodeId src = pending[skip].a;
    NodeId dst = pending[skip].b;
    std::unordered_map<NodeId, std::vector<NodeId>> adj;
    for (size_t k = 0; k < pending.size(); ++k) {
      if (removed[k] || k == skip) continue;
      adj[pending[k].a].push_back(pending[k].b);
      adj[pending[k].b].push_back(pending[k].a);
    }
    std::queue<NodeId> q;
    std::unordered_set<NodeId> seen;
    q.push(src);
    seen.insert(src);
    while (!q.empty()) {
      NodeId u = q.front();
      q.pop();
      if (u == dst) return true;
      for (NodeId v : adj[u]) {
        if (seen.insert(v).second) q.push(v);
      }
    }
    return false;
  };

  size_t removals = 0;
  for (size_t k : minor_indices) {
    if (removals >= target_removals) break;
    if (connected_without(k)) {
      removed[k] = true;
      ++removals;
    }
  }

  for (size_t k = 0; k < pending.size(); ++k) {
    if (removed[k]) continue;
    const PendingEdge& pe = pending[k];
    double width = TypicalWidthMeters(pe.grade) * rng.Uniform(0.85, 1.15);
    Result<EdgeId> added =
        net.AddEdge(pe.a, pe.b, pe.grade, width, pe.dir, pe.name);
    STMAKER_CHECK(added.ok());
    net.mutable_edge(*added).cost_bias = rng.Uniform(0.88, 1.12);
  }

  net.AnnotateTurningPoints();
  net.BuildSpatialIndex();
  return out;
}

}  // namespace stmaker
