#include "roadnet/route_cache.h"

#include "common/metrics.h"

namespace stmaker {

CachingRouter::CachingRouter(const RoadNetwork* network, EdgeCostFn cost,
                             size_t capacity)
    : router_(network), cost_(std::move(cost)), cache_(capacity) {}

Result<Path> CachingRouter::Route(NodeId src, NodeId dst,
                                  const RequestContext* ctx) const {
  static Counter& cache_hits =
      MetricsRegistry::Global().counter("roadnet.route_cache.hits");
  static Counter& cache_misses =
      MetricsRegistry::Global().counter("roadnet.route_cache.misses");
  const std::pair<NodeId, NodeId> key{src, dst};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const Result<Path>* hit = cache_.Get(key)) {
      cache_hits.Increment();
      return *hit;
    }
  }
  cache_misses.Increment();
  Result<Path> result = router_.Route(src, dst, cost_, ctx);
  // Context errors (deadline/cancel/budget) are per-request, not
  // per-OD-pair: caching one would poison every later query for the pair.
  if (!IsContextError(result.status().code())) {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.Put(key, result);
  }
  return result;
}

CacheStats CachingRouter::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.stats();
}

}  // namespace stmaker
