#include "roadnet/route_cache.h"

namespace stmaker {

CachingRouter::CachingRouter(const RoadNetwork* network, EdgeCostFn cost,
                             size_t capacity)
    : router_(network), cost_(std::move(cost)), cache_(capacity) {}

Result<Path> CachingRouter::Route(NodeId src, NodeId dst) const {
  const std::pair<NodeId, NodeId> key{src, dst};
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const Result<Path>* hit = cache_.Get(key)) return *hit;
  }
  Result<Path> result = router_.Route(src, dst, cost_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.Put(key, result);
  }
  return result;
}

std::pair<size_t, size_t> CachingRouter::CacheStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {cache_.hits(), cache_.misses()};
}

}  // namespace stmaker
