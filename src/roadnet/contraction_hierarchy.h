#ifndef STMAKER_ROADNET_CONTRACTION_HIERARCHY_H_
#define STMAKER_ROADNET_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/context.h"
#include "common/status.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"

/// \file
/// \brief Contraction-hierarchies routing backend (Geisberger et al. 2008).
///
/// Offline, nodes are contracted one by one in importance order (edge
/// difference with lazy re-evaluation plus a deleted-neighbours term);
/// every contraction that would break a shortest path inserts a shortcut
/// arc remembering its two constituent arcs. Online, a point-to-point
/// query is a bidirectional Dijkstra that only ever relaxes arcs leading
/// to higher-ranked nodes — search spaces of tens of nodes where plain
/// Dijkstra settles half the graph — and the winning up-down path is
/// unpacked back into original node/edge ids. The preprocessing serves the
/// default geometric-length metric; queries under custom cost functions
/// fall back to plain Dijkstra at the ShortestPathRouter seam (see
/// shortest_path.h and DESIGN.md §12).

namespace stmaker {

/// Preprocessing knobs. The defaults favour fast construction; witness
/// searches are capped, which can only ever add redundant shortcuts, never
/// produce wrong distances.
struct ContractionHierarchyOptions {
  /// Settled-node cap per witness search during contraction. Lower = faster
  /// build, slightly more shortcuts.
  size_t witness_settle_limit = 64;
  /// Hop cap per witness-search label (bounds path length in arcs).
  size_t witness_hop_limit = 16;
};

/// \brief A preprocessed routing hierarchy over one RoadNetwork under the
/// geometric-length metric.
///
/// Immutable once built (or loaded); all query methods are const and
/// thread-safe (per-thread search workspaces). The network the hierarchy
/// was built over must outlive it and must not change — Load validates
/// node/edge counts and edge endpoints to catch a stale hierarchy, and
/// model manifests add a CRC32 on top (stmaker_model_io).
class ContractionHierarchy {
 public:
  /// One arc of the search graph: either an original road edge
  /// (edge >= 0) or a shortcut standing for the concatenation of two
  /// earlier arcs (left/right >= 0).
  struct Arc {
    NodeId from = -1;
    NodeId to = -1;
    double weight = 0;  ///< Geometric length of the represented path, m.
    EdgeId edge = -1;   ///< Original edge id, or -1 for a shortcut.
    int32_t left = -1;  ///< Constituent arc ids of a shortcut (-1 for an
    int32_t right = -1; ///< original edge); left covers from->mid, right
                        ///< mid->to, where mid is the contracted node.
  };

  /// Contracts `network` under the geometric-length metric.
  ///
  /// Deterministic: the node order depends only on the graph, never on
  /// thread scheduling or address layout. Build time is roughly linear in
  /// the network size for road-like graphs; budget a few hundred
  /// milliseconds per 100k nodes.
  ///
  /// \param network The road graph to preprocess; must outlive the result.
  /// \param options Witness-search caps (see ContractionHierarchyOptions).
  /// \return The hierarchy, or InvalidArgument for an empty network.
  static Result<ContractionHierarchy> Build(
      const RoadNetwork& network,
      const ContractionHierarchyOptions& options =
          ContractionHierarchyOptions());

  /// Shortest-path distance from `src` to `dst` in meters.
  ///
  /// Exactly Dijkstra's distance (up to floating-point associativity).
  /// Honors the context like ShortestPathRouter::Route: deadline/cancel
  /// checks every few settled nodes, and ctx->max_node_expansions caps the
  /// total settled nodes across both search directions
  /// (kResourceExhausted).
  ///
  /// \param src Start node id.
  /// \param dst Destination node id.
  /// \param ctx Optional request limits (may be null).
  /// \return The distance, NotFound when unreachable, InvalidArgument for
  ///   out-of-range ids, or a context error.
  Result<double> Distance(NodeId src, NodeId dst,
                          const RequestContext* ctx = nullptr) const;

  /// Shortest path from `src` to `dst`, unpacked to original node/edge
  /// ids — the same shape ShortestPathRouter::Route returns, with
  /// path.cost equal to Distance(). Context handling as in Distance().
  ///
  /// \param src Start node id.
  /// \param dst Destination node id.
  /// \param ctx Optional request limits (may be null).
  /// \return The unpacked path or the same errors as Distance().
  Result<Path> Route(NodeId src, NodeId dst,
                     const RequestContext* ctx = nullptr) const;

  /// Many-to-many distance table: result[i][j] is the distance from
  /// sources[i] to targets[j], or +infinity when unreachable.
  ///
  /// Uses the bucket algorithm (Knopp et al. 2007): one backward upward
  /// search per target fills per-node buckets, then one forward upward
  /// search per source scans them — |S|+|T| small searches instead of
  /// |S|·|T| point-to-point queries. This is the API batch workloads
  /// (landmark-pair tables, calibration anchor matrices, bench sweeps)
  /// should use instead of looping over Route().
  ///
  /// \param sources Source node ids (any order, duplicates allowed).
  /// \param targets Target node ids (any order, duplicates allowed).
  /// \param ctx Optional request limits; the expansion budget caps the
  ///   total settled nodes across all |S|+|T| searches.
  /// \return The |S|×|T| table, InvalidArgument for out-of-range ids, or a
  ///   context error.
  Result<std::vector<std::vector<double>>> BatchRoutes(
      std::span<const NodeId> sources, std::span<const NodeId> targets,
      const RequestContext* ctx = nullptr) const;

  /// Number of nodes of the underlying network.
  size_t NumNodes() const { return rank_.size(); }
  /// Total arcs of the search graph (original edges + shortcuts).
  size_t NumArcs() const { return arcs_.size(); }
  /// Shortcut arcs added by preprocessing.
  size_t NumShortcuts() const { return num_shortcuts_; }
  /// Contraction rank of `node` (0 = contracted first).
  uint32_t Rank(NodeId node) const {
    return rank_[static_cast<size_t>(node)];
  }
  /// The full rank table (entry i = Rank(i)); the serialization surface
  /// FromRaw() restores from.
  std::span<const uint32_t> ranks() const { return rank_; }
  /// The raw search-graph arcs (originals then shortcuts, in build order);
  /// the serialization surface FromRaw() restores from.
  std::span<const Arc> arcs() const { return arcs_; }

  /// Serializes the hierarchy as a CSV table with a trailing CRC32 record,
  /// suitable for WriteFileAtomic and model manifests.
  /// \return The file content.
  std::string SaveToString() const;

  /// SaveToString() written atomically to `path`.
  /// \param path Destination file path.
  /// \return OK, or the I/O error.
  Status SaveToFile(const std::string& path) const;

  /// Parses a hierarchy saved by SaveToString and validates it against
  /// `network` (node/edge counts, edge endpoints, arc structure, CRC).
  ///
  /// \param content The serialized hierarchy.
  /// \param network The network the hierarchy must describe; must outlive
  ///   the result.
  /// \param context Label used in error messages (typically the path).
  /// \return The hierarchy, or FailedPrecondition/InvalidArgument naming
  ///   what is corrupt or stale.
  static Result<ContractionHierarchy> LoadFromString(
      const std::string& content, const RoadNetwork& network,
      const std::string& context);

  /// Reads `path` and parses it with LoadFromString (context = path).
  /// \param path The file to read.
  /// \param network The network the hierarchy must describe.
  /// \return The hierarchy, kIoError when unreadable, or the
  ///   LoadFromString errors.
  static Result<ContractionHierarchy> LoadFromFile(
      const std::string& path, const RoadNetwork& network);

  /// Restores a hierarchy from raw rank/arc arrays (the binary model
  /// container path). Runs exactly the semantic validation LoadFromString
  /// runs after parsing — rank permutation, arcs matched against the
  /// network's edges, shortcut chains and counts — so a corrupt or stale
  /// container section is rejected identically to a corrupt CSV.
  ///
  /// \param rank Contraction rank per node (NumNodes() entries).
  /// \param arcs The search-graph arcs, originals and shortcuts.
  /// \param declared_num_edges Network edge count recorded at save time.
  /// \param declared_shortcuts Shortcut count recorded at save time.
  /// \param network The network the hierarchy must describe; must outlive
  ///   the result.
  /// \param context Label used in error messages (e.g. the container
  ///   path).
  /// \return The hierarchy, or FailedPrecondition naming what is corrupt.
  static Result<ContractionHierarchy> FromRaw(
      std::span<const uint32_t> rank, std::span<const Arc> arcs,
      size_t declared_num_edges, size_t declared_shortcuts,
      const RoadNetwork& network, const std::string& context);

 private:
  /// One adjacency entry of the upward search graphs.
  struct UpArc {
    NodeId to = -1;     ///< The higher-ranked endpoint.
    double weight = 0;
    int32_t arc = -1;   ///< Index into arcs_ (for unpacking).
  };

  /// Builds up_/rev_up_ from arcs_ + rank_ (called by Build and Load).
  void BuildSearchGraphs();

  /// Shared tail of LoadFromString and FromRaw: validates the rank
  /// permutation and every arc against `network`, then assembles the
  /// hierarchy and builds the search graphs.
  static Result<ContractionHierarchy> FromParts(std::vector<uint32_t> rank,
                                                std::vector<Arc> arcs,
                                                size_t declared_shortcuts,
                                                const RoadNetwork& network,
                                                const std::string& context);

  /// Bidirectional upward search; on success fills *meet with the apex
  /// node and *dist with the distance, leaving the per-thread workspace
  /// populated for parent extraction.
  Status Search(NodeId src, NodeId dst, const RequestContext* ctx,
                NodeId* meet, double* dist) const;

  /// Appends the original edges of arc `arc` (left-to-right) to *nodes /
  /// *edges, expanding shortcuts depth-first.
  void Unpack(int32_t arc, std::vector<NodeId>* nodes,
              std::vector<EdgeId>* edges) const;

  std::vector<uint32_t> rank_;
  std::vector<Arc> arcs_;
  size_t num_edges_ = 0;     ///< NumEdges() of the source network.
  size_t num_shortcuts_ = 0;
  std::vector<std::vector<UpArc>> up_;      ///< Forward: u -> higher rank.
  std::vector<std::vector<UpArc>> rev_up_;  ///< Backward: t -> higher-rank u
                                            ///< with an arc u->t.
};

}  // namespace stmaker

#endif  // STMAKER_ROADNET_CONTRACTION_HIERARCHY_H_
