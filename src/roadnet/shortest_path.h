#ifndef STMAKER_ROADNET_SHORTEST_PATH_H_
#define STMAKER_ROADNET_SHORTEST_PATH_H_

#include <functional>
#include <vector>

#include "common/context.h"
#include "common/status.h"
#include "roadnet/road_network.h"

namespace stmaker {

/// A routed path: n nodes and n-1 edges, plus the total cost under the cost
/// function used to compute it.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  double cost = 0;

  bool empty() const { return nodes.empty(); }
};

/// Cost of traversing `edge` in the given direction. Must be non-negative
/// for Dijkstra. The default (null) cost function is geometric length.
using EdgeCostFn = std::function<double(const RoadEdge& edge, bool forward)>;

/// Cost = edge length in meters.
EdgeCostFn LengthCost();

/// Cost = free-flow travel time in seconds (length / grade speed), which
/// biases routes onto high-grade roads like real navigation does.
EdgeCostFn TravelTimeCost();

/// \brief Single-source shortest path routing over a RoadNetwork.
///
/// The pointee network must outlive the router. Dijkstra is the production
/// algorithm; BellmanFord exists as an independent oracle for tests.
class ShortestPathRouter {
 public:
  explicit ShortestPathRouter(const RoadNetwork* network);

  /// Dijkstra from `src` to `dst`. Returns NotFound when unreachable.
  ///
  /// With a context: the expansion loop checks the deadline/cancel token
  /// periodically (kDeadlineExceeded/kCancelled — never a truncated path),
  /// and ctx->max_node_expansions caps the number of settled nodes for
  /// this call (kResourceExhausted when the cap is hit before dst).
  Result<Path> Route(NodeId src, NodeId dst, const EdgeCostFn& cost = nullptr,
                     const RequestContext* ctx = nullptr) const;

  /// A* with a straight-line admissible heuristic. `heuristic_scale` maps
  /// meters of bird distance to cost units and must keep the heuristic
  /// admissible for the cost function in use: for LengthCost use 1.0; for
  /// TravelTimeCost use 3.6 / max-speed-kmh (seconds per meter at the
  /// fastest grade). A scale of 0 degenerates to Dijkstra. Same result as
  /// Route() whenever the heuristic is admissible, explored-node count
  /// permitting. Honors the context like Route().
  Result<Path> RouteAStar(NodeId src, NodeId dst, const EdgeCostFn& cost,
                          double heuristic_scale,
                          const RequestContext* ctx = nullptr) const;

  /// Bellman–Ford reference implementation (O(V·E)); test oracle only.
  Result<Path> RouteBellmanFord(NodeId src, NodeId dst,
                                const EdgeCostFn& cost = nullptr) const;

 private:
  const RoadNetwork* network_;
};

}  // namespace stmaker

#endif  // STMAKER_ROADNET_SHORTEST_PATH_H_
