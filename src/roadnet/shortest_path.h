#ifndef STMAKER_ROADNET_SHORTEST_PATH_H_
#define STMAKER_ROADNET_SHORTEST_PATH_H_

/// \file
/// ShortestPathRouter: Dijkstra, A*, and Bellman–Ford point queries,
/// with transparent contraction-hierarchy acceleration when attached.

#include <functional>
#include <vector>

#include "common/context.h"
#include "common/status.h"
#include "roadnet/road_network.h"

namespace stmaker {

class ContractionHierarchy;

/// A routed path: n nodes and n-1 edges, plus the total cost under the cost
/// function used to compute it.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  double cost = 0;

  bool empty() const { return nodes.empty(); }
};

/// Cost of traversing `edge` in the given direction. Must be non-negative
/// for Dijkstra. The default (null) cost function is geometric length.
using EdgeCostFn = std::function<double(const RoadEdge& edge, bool forward)>;

/// Cost = edge length in meters.
EdgeCostFn LengthCost();

/// Cost = free-flow travel time in seconds (length / grade speed), which
/// biases routes onto high-grade roads like real navigation does.
EdgeCostFn TravelTimeCost();

/// \brief Single-source shortest path routing over a RoadNetwork.
///
/// The pointee network must outlive the router. Dijkstra is the production
/// algorithm; BellmanFord exists as an independent oracle for tests. A
/// preprocessed ContractionHierarchy can be attached as an accelerated
/// backend for the default length metric — see AttachHierarchy().
class ShortestPathRouter {
 public:
  explicit ShortestPathRouter(const RoadNetwork* network);

  /// Attaches (or, with null, detaches) a preprocessed hierarchy built over
  /// the same network. While attached, Route() calls under the default
  /// geometric-length metric (null cost) are served by the hierarchy's
  /// bidirectional search; calls with a custom EdgeCostFn transparently
  /// fall back to Dijkstra, since the preprocessing is only valid for the
  /// metric it was contracted under (the `router.ch.fallbacks` counter
  /// tracks those). The hierarchy must outlive the router. Not
  /// synchronized with concurrent Route() calls — attach before serving.
  ///
  /// \param hierarchy The hierarchy to serve length-metric queries, or
  ///   null to return to plain Dijkstra.
  void AttachHierarchy(const ContractionHierarchy* hierarchy) {
    hierarchy_ = hierarchy;
  }

  /// The attached hierarchy, or null when routing is pure Dijkstra.
  const ContractionHierarchy* hierarchy() const { return hierarchy_; }

  /// Shortest path from `src` to `dst`. Returns NotFound when unreachable.
  ///
  /// Served by the attached contraction hierarchy when one is present and
  /// `cost` is null (the default length metric); by Dijkstra otherwise.
  /// Both backends return the same distances and honor the same context
  /// contract.
  ///
  /// With a context: the expansion loop checks the deadline/cancel token
  /// periodically (kDeadlineExceeded/kCancelled — never a truncated path),
  /// and ctx->max_node_expansions caps the number of settled nodes for
  /// this call (kResourceExhausted when the cap is hit before dst).
  ///
  /// \param src Start node id.
  /// \param dst Destination node id.
  /// \param cost Traversal cost function; null selects geometric length.
  /// \param ctx Optional request limits (may be null).
  /// \return The path, NotFound when unreachable, InvalidArgument for
  ///   out-of-range ids, or a context error.
  Result<Path> Route(NodeId src, NodeId dst, const EdgeCostFn& cost = nullptr,
                     const RequestContext* ctx = nullptr) const;

  /// A* with a straight-line admissible heuristic. `heuristic_scale` maps
  /// meters of bird distance to cost units and must keep the heuristic
  /// admissible for the cost function in use: for LengthCost use 1.0; for
  /// TravelTimeCost use 3.6 / max-speed-kmh (seconds per meter at the
  /// fastest grade). A scale of 0 degenerates to Dijkstra. Same result as
  /// Route() whenever the heuristic is admissible, explored-node count
  /// permitting. Honors the context like Route().
  Result<Path> RouteAStar(NodeId src, NodeId dst, const EdgeCostFn& cost,
                          double heuristic_scale,
                          const RequestContext* ctx = nullptr) const;

  /// Bellman–Ford reference implementation (O(V·E)); test oracle only.
  Result<Path> RouteBellmanFord(NodeId src, NodeId dst,
                                const EdgeCostFn& cost = nullptr) const;

 private:
  const RoadNetwork* network_;
  const ContractionHierarchy* hierarchy_ = nullptr;
};

}  // namespace stmaker

#endif  // STMAKER_ROADNET_SHORTEST_PATH_H_
