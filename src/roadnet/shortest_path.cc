#include "roadnet/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/check.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "roadnet/contraction_hierarchy.h"

namespace stmaker {

namespace {

/// Flushes a search's expansion count into the registry on every exit path
/// (success, NotFound, deadline, budget) with a single Increment.
struct ExpansionCounter {
  Counter& sink;
  size_t expansions = 0;
  ~ExpansionCounter() { sink.Increment(expansions); }
};

Counter& DijkstraSearches() {
  static Counter& c =
      MetricsRegistry::Global().counter("roadnet.dijkstra.searches");
  return c;
}

Counter& DijkstraNodesExpanded() {
  static Counter& c =
      MetricsRegistry::Global().counter("roadnet.dijkstra.nodes_expanded");
  return c;
}

Counter& AStarSearches() {
  static Counter& c =
      MetricsRegistry::Global().counter("roadnet.astar.searches");
  return c;
}

Counter& AStarNodesExpanded() {
  static Counter& c =
      MetricsRegistry::Global().counter("roadnet.astar.nodes_expanded");
  return c;
}

Histogram& RouteLatency() {
  static Histogram& h = MetricsRegistry::Global().histogram("roadnet.route_ms");
  return h;
}

Counter& ChFallbacks() {
  static Counter& c = MetricsRegistry::Global().counter("router.ch.fallbacks");
  return c;
}

}  // namespace

EdgeCostFn LengthCost() {
  return [](const RoadEdge& e, bool /*forward*/) { return e.length_m; };
}

EdgeCostFn TravelTimeCost() {
  return [](const RoadEdge& e, bool /*forward*/) {
    double speed_mps = FreeFlowSpeedKmh(e.grade) / 3.6;
    return e.length_m / speed_mps;
  };
}

ShortestPathRouter::ShortestPathRouter(const RoadNetwork* network)
    : network_(network) {
  STMAKER_CHECK(network != nullptr);
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

Result<Path> Reconstruct(const RoadNetwork& net, NodeId src, NodeId dst,
                         const std::vector<double>& dist,
                         const std::vector<NodeId>& prev_node,
                         const std::vector<EdgeId>& prev_edge) {
  if (dist[dst] == kInf) {
    return Status::NotFound("no route between the given nodes");
  }
  Path path;
  path.cost = dist[dst];
  for (NodeId at = dst; at != src; at = prev_node[at]) {
    path.nodes.push_back(at);
    path.edges.push_back(prev_edge[at]);
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  (void)net;
  return path;
}

/// kResourceExhausted for a search that settled `expansions` nodes without
/// reaching dst inside the per-call budget.
Status BudgetExhausted(size_t budget) {
  return Status::ResourceExhausted(
      "node-expansion budget (" + std::to_string(budget) +
      ") exhausted before reaching the destination");
}

}  // namespace

Result<Path> ShortestPathRouter::Route(NodeId src, NodeId dst,
                                       const EdgeCostFn& cost,
                                       const RequestContext* ctx) const {
  const RoadNetwork& net = *network_;
  if (src < 0 || static_cast<size_t>(src) >= net.NumNodes() || dst < 0 ||
      static_cast<size_t>(dst) >= net.NumNodes()) {
    return Status::InvalidArgument("Route: node id out of range");
  }
  if (hierarchy_ != nullptr) {
    if (!cost) return hierarchy_->Route(src, dst, ctx);
    // The hierarchy was contracted under the length metric; a custom cost
    // function must take the exact path.
    ChFallbacks().Increment();
  }
  STMAKER_RETURN_IF_ERROR(CheckContext(ctx));
  DijkstraSearches().Increment();
  ScopedSpan span(TraceOf(ctx), "dijkstra", &RouteLatency());
  ExpansionCounter expanded{DijkstraNodesExpanded()};
  const size_t budget = ctx == nullptr ? 0 : ctx->max_node_expansions;
  size_t& expansions = expanded.expansions;
  CancelCheck check(ctx);
  EdgeCostFn c = cost ? cost : LengthCost();
  std::vector<double> dist(net.NumNodes(), kInf);
  std::vector<NodeId> prev_node(net.NumNodes(), -1);
  std::vector<EdgeId> prev_edge(net.NumNodes(), -1);
  using QItem = std::pair<double, NodeId>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist[src] = 0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    STMAKER_RETURN_IF_ERROR(check.Tick());
    ++expansions;
    if (budget > 0 && expansions > budget) return BudgetExhausted(budget);
    for (const Adjacency& adj : net.OutEdges(u)) {
      double w = c(net.edge(adj.edge), adj.forward);
      STMAKER_DCHECK(w >= 0);
      double nd = d + w;
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        prev_node[adj.neighbor] = u;
        prev_edge[adj.neighbor] = adj.edge;
        pq.push({nd, adj.neighbor});
      }
    }
  }
  return Reconstruct(net, src, dst, dist, prev_node, prev_edge);
}

Result<Path> ShortestPathRouter::RouteAStar(NodeId src, NodeId dst,
                                            const EdgeCostFn& cost,
                                            double heuristic_scale,
                                            const RequestContext* ctx) const {
  const RoadNetwork& net = *network_;
  if (src < 0 || static_cast<size_t>(src) >= net.NumNodes() || dst < 0 ||
      static_cast<size_t>(dst) >= net.NumNodes()) {
    return Status::InvalidArgument("RouteAStar: node id out of range");
  }
  if (heuristic_scale < 0) {
    return Status::InvalidArgument("RouteAStar: negative heuristic scale");
  }
  STMAKER_RETURN_IF_ERROR(CheckContext(ctx));
  AStarSearches().Increment();
  ScopedSpan span(TraceOf(ctx), "astar", &RouteLatency());
  ExpansionCounter expanded{AStarNodesExpanded()};
  const size_t budget = ctx == nullptr ? 0 : ctx->max_node_expansions;
  size_t& expansions = expanded.expansions;
  CancelCheck check(ctx);
  EdgeCostFn c = cost ? cost : LengthCost();
  const Vec2 goal = net.node(dst).pos;
  auto h = [&](NodeId n) {
    return heuristic_scale * Distance(net.node(n).pos, goal);
  };
  std::vector<double> dist(net.NumNodes(), kInf);
  std::vector<NodeId> prev_node(net.NumNodes(), -1);
  std::vector<EdgeId> prev_edge(net.NumNodes(), -1);
  using QItem = std::pair<double, NodeId>;  // (g + h, node)
  std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
  dist[src] = 0;
  pq.push({h(src), src});
  while (!pq.empty()) {
    auto [f, u] = pq.top();
    pq.pop();
    if (f > dist[u] + h(u) + 1e-9) continue;  // stale entry
    if (u == dst) break;
    STMAKER_RETURN_IF_ERROR(check.Tick());
    ++expansions;
    if (budget > 0 && expansions > budget) return BudgetExhausted(budget);
    for (const Adjacency& adj : net.OutEdges(u)) {
      double w = c(net.edge(adj.edge), adj.forward);
      STMAKER_DCHECK(w >= 0);
      double nd = dist[u] + w;
      if (nd < dist[adj.neighbor]) {
        dist[adj.neighbor] = nd;
        prev_node[adj.neighbor] = u;
        prev_edge[adj.neighbor] = adj.edge;
        pq.push({nd + h(adj.neighbor), adj.neighbor});
      }
    }
  }
  return Reconstruct(net, src, dst, dist, prev_node, prev_edge);
}

Result<Path> ShortestPathRouter::RouteBellmanFord(
    NodeId src, NodeId dst, const EdgeCostFn& cost) const {
  const RoadNetwork& net = *network_;
  if (src < 0 || static_cast<size_t>(src) >= net.NumNodes() || dst < 0 ||
      static_cast<size_t>(dst) >= net.NumNodes()) {
    return Status::InvalidArgument("RouteBellmanFord: node id out of range");
  }
  EdgeCostFn c = cost ? cost : LengthCost();
  std::vector<double> dist(net.NumNodes(), kInf);
  std::vector<NodeId> prev_node(net.NumNodes(), -1);
  std::vector<EdgeId> prev_edge(net.NumNodes(), -1);
  dist[src] = 0;
  bool changed = true;
  for (size_t round = 0; round < net.NumNodes() && changed; ++round) {
    changed = false;
    for (NodeId u = 0; static_cast<size_t>(u) < net.NumNodes(); ++u) {
      if (dist[u] == kInf) continue;
      for (const Adjacency& adj : net.OutEdges(u)) {
        double nd = dist[u] + c(net.edge(adj.edge), adj.forward);
        if (nd < dist[adj.neighbor]) {
          dist[adj.neighbor] = nd;
          prev_node[adj.neighbor] = u;
          prev_edge[adj.neighbor] = adj.edge;
          changed = true;
        }
      }
    }
  }
  return Reconstruct(net, src, dst, dist, prev_node, prev_edge);
}

}  // namespace stmaker
