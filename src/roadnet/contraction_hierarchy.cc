#include "roadnet/contraction_hierarchy.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <queue>
#include <string_view>
#include <utility>

#include "common/check.h"
#include "common/crc32.h"
#include "common/csv.h"
#include "common/fileutil.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace stmaker {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct ExpansionCounter {
  Counter& sink;
  size_t expansions = 0;
  ~ExpansionCounter() { sink.Increment(expansions); }
};

Counter& ChSearches() {
  static Counter& c = MetricsRegistry::Global().counter("router.ch.searches");
  return c;
}

Counter& ChNodesExpanded() {
  static Counter& c =
      MetricsRegistry::Global().counter("router.ch.nodes_expanded");
  return c;
}

Counter& ChBuilds() {
  static Counter& c = MetricsRegistry::Global().counter("router.ch.builds");
  return c;
}

Counter& ChShortcutsBuilt() {
  static Counter& c =
      MetricsRegistry::Global().counter("router.ch.shortcuts_built");
  return c;
}

Counter& ChBatchTables() {
  static Counter& c =
      MetricsRegistry::Global().counter("router.ch.batch_tables");
  return c;
}

Counter& ChBatchPairs() {
  static Counter& c =
      MetricsRegistry::Global().counter("router.ch.batch_pairs");
  return c;
}

Histogram& ChRouteLatency() {
  static Histogram& h =
      MetricsRegistry::Global().histogram("roadnet.ch.route_ms");
  return h;
}

Histogram& ChBatchLatency() {
  static Histogram& h =
      MetricsRegistry::Global().histogram("roadnet.ch.batch_ms");
  return h;
}

Histogram& ChBuildLatency() {
  static Histogram& h =
      MetricsRegistry::Global().histogram("roadnet.ch.build_ms");
  return h;
}

Status BudgetExhausted(size_t budget) {
  return Status::ResourceExhausted(
      "node-expansion budget (" + std::to_string(budget) +
      ") exhausted before the hierarchy search completed");
}

using QItem = std::pair<double, NodeId>;
using MinQueue = std::priority_queue<QItem, std::vector<QItem>, std::greater<>>;

/// Reusable distance/parent arrays for the bidirectional query, valid only
/// for entries stamped with the current generation. One per thread so const
/// queries are trivially race-free.
struct QuerySpace {
  std::vector<double> dist[2];
  std::vector<int32_t> parent[2];
  std::vector<uint32_t> stamp[2];
  uint32_t gen = 0;

  void Begin(size_t n) {
    for (int d = 0; d < 2; ++d) {
      if (dist[d].size() < n) {
        dist[d].resize(n, kInf);
        parent[d].resize(n, -1);
        stamp[d].resize(n, 0);
      }
    }
    if (++gen == 0) {  // stamp wrap: invalidate everything explicitly
      std::fill(stamp[0].begin(), stamp[0].end(), 0u);
      std::fill(stamp[1].begin(), stamp[1].end(), 0u);
      gen = 1;
    }
  }

  bool Stamped(int d, NodeId u) const {
    return stamp[d][static_cast<size_t>(u)] == gen;
  }
  double Dist(int d, NodeId u) const {
    return Stamped(d, u) ? dist[d][static_cast<size_t>(u)] : kInf;
  }
  void Set(int d, NodeId u, double dd, int32_t via) {
    size_t i = static_cast<size_t>(u);
    dist[d][i] = dd;
    parent[d][i] = via;
    stamp[d][i] = gen;
  }
};

thread_local QuerySpace g_query_space;

/// Stamped Dijkstra workspace for the (single-threaded) contraction phase.
struct WitnessSpace {
  std::vector<double> dist;
  std::vector<uint32_t> hops;
  std::vector<uint32_t> stamp;
  uint32_t gen = 0;

  explicit WitnessSpace(size_t n) : dist(n, kInf), hops(n, 0), stamp(n, 0) {}

  void Begin() {
    if (++gen == 0) {
      std::fill(stamp.begin(), stamp.end(), 0u);
      gen = 1;
    }
  }
  bool Stamped(NodeId u) const { return stamp[static_cast<size_t>(u)] == gen; }
  double Dist(NodeId u) const {
    return Stamped(u) ? dist[static_cast<size_t>(u)] : kInf;
  }
};

/// One directed arc of the contraction overlay graph. `arc` indexes the
/// shared arc pool so shortcuts can reference their constituents.
struct OverlayArc {
  NodeId other = -1;  // head for out-lists, tail for in-lists
  double weight = 0;
  int32_t arc = -1;
};

/// Offline contraction: owns the overlay graph, the witness workspace, and
/// the growing arc pool. Single-threaded and deterministic — iteration
/// follows vector order and the priority queue breaks ties by node id.
class Contractor {
 public:
  Contractor(const RoadNetwork& net, const ContractionHierarchyOptions& opt)
      : net_(net),
        opt_(opt),
        n_(net.NumNodes()),
        out_(n_),
        in_(n_),
        contracted_(n_, false),
        deleted_neighbors_(n_, 0),
        rank_(n_, 0),
        ws_(n_) {}

  void Run() {
    SeedOriginalArcs();
    std::priority_queue<std::pair<int64_t, NodeId>,
                        std::vector<std::pair<int64_t, NodeId>>,
                        std::greater<>>
        pq;
    for (NodeId v = 0; static_cast<size_t>(v) < n_; ++v) {
      pq.push({Priority(v), v});
    }
    uint32_t order = 0;
    while (!pq.empty()) {
      auto [p, v] = pq.top();
      pq.pop();
      if (contracted_[static_cast<size_t>(v)]) continue;
      // Lazy re-evaluation: the stored priority may be stale (neighbors
      // were contracted since). Recompute, and only contract if v is
      // still at least as good as the next candidate.
      int64_t fresh = Priority(v);
      if (!pq.empty() && fresh > pq.top().first) {
        pq.push({fresh, v});
        continue;
      }
      Contract(v);
      rank_[static_cast<size_t>(v)] = order++;
    }
    STMAKER_CHECK(order == n_);
  }

  std::vector<uint32_t> TakeRanks() { return std::move(rank_); }
  std::vector<ContractionHierarchy::Arc> TakeArcs() { return std::move(arcs_); }

 private:
  void SeedOriginalArcs() {
    for (NodeId u = 0; static_cast<size_t>(u) < n_; ++u) {
      for (const Adjacency& adj : net_.OutEdges(u)) {
        const RoadEdge& e = net_.edge(adj.edge);
        AddOverlayArc(u, adj.neighbor, e.length_m, adj.edge, -1, -1);
      }
    }
  }

  /// Inserts (or improves) the overlay arc u->t. Keeps at most one overlay
  /// arc per ordered pair — the lightest — which is all shortest-path
  /// preservation needs. Appends a pool arc only when the overlay changes.
  void AddOverlayArc(NodeId u, NodeId t, double weight, EdgeId edge,
                     int32_t left, int32_t right) {
    for (OverlayArc& oa : out_[static_cast<size_t>(u)]) {
      if (oa.other != t) continue;
      if (oa.weight <= weight) return;  // existing arc dominates
      int32_t id = AppendPoolArc(u, t, weight, edge, left, right);
      oa.weight = weight;
      oa.arc = id;
      for (OverlayArc& ia : in_[static_cast<size_t>(t)]) {
        if (ia.other == u) {
          ia.weight = weight;
          ia.arc = id;
          break;
        }
      }
      return;
    }
    int32_t id = AppendPoolArc(u, t, weight, edge, left, right);
    out_[static_cast<size_t>(u)].push_back({t, weight, id});
    in_[static_cast<size_t>(t)].push_back({u, weight, id});
  }

  int32_t AppendPoolArc(NodeId u, NodeId t, double weight, EdgeId edge,
                        int32_t left, int32_t right) {
    ContractionHierarchy::Arc a;
    a.from = u;
    a.to = t;
    a.weight = weight;
    a.edge = edge;
    a.left = left;
    a.right = right;
    arcs_.push_back(a);
    return static_cast<int32_t>(arcs_.size() - 1);
  }

  /// Capped Dijkstra from `u` over the overlay, never entering `skip`.
  /// Fills ws_ distances; used both to price a contraction and to decide
  /// which shortcuts a real contraction must add.
  void WitnessSearch(NodeId u, NodeId skip, double cutoff) {
    ws_.Begin();
    MinQueue pq;
    ws_.dist[static_cast<size_t>(u)] = 0;
    ws_.hops[static_cast<size_t>(u)] = 0;
    ws_.stamp[static_cast<size_t>(u)] = ws_.gen;
    pq.push({0.0, u});
    size_t settled = 0;
    while (!pq.empty()) {
      auto [d, x] = pq.top();
      pq.pop();
      if (d > ws_.Dist(x)) continue;
      if (d > cutoff) break;
      if (++settled > opt_.witness_settle_limit) break;
      uint32_t h = ws_.hops[static_cast<size_t>(x)];
      if (h >= opt_.witness_hop_limit) continue;
      for (const OverlayArc& oa : out_[static_cast<size_t>(x)]) {
        if (oa.other == skip) continue;
        double nd = d + oa.weight;
        if (nd < ws_.Dist(oa.other)) {
          size_t i = static_cast<size_t>(oa.other);
          ws_.dist[i] = nd;
          ws_.hops[i] = h + 1;
          ws_.stamp[i] = ws_.gen;
          pq.push({nd, oa.other});
        }
      }
    }
  }

  /// Counts the shortcuts contracting `v` would need; when `perform`, also
  /// inserts them into the overlay/pool.
  int SimulateContract(NodeId v, bool perform) {
    int shortcuts = 0;
    const auto& ins = in_[static_cast<size_t>(v)];
    const auto& outs = out_[static_cast<size_t>(v)];
    if (ins.empty() || outs.empty()) return 0;
    double max_out = 0;
    for (const OverlayArc& oa : outs) max_out = std::max(max_out, oa.weight);
    // Copy: perform-mode insertions may reallocate the adjacency lists.
    std::vector<OverlayArc> in_copy(ins.begin(), ins.end());
    std::vector<OverlayArc> out_copy(outs.begin(), outs.end());
    for (const OverlayArc& ia : in_copy) {
      NodeId u = ia.other;
      WitnessSearch(u, v, ia.weight + max_out);
      for (const OverlayArc& oa : out_copy) {
        NodeId t = oa.other;
        if (t == u) continue;
        double via = ia.weight + oa.weight;
        if (ws_.Dist(t) <= via) continue;  // a witness path survives
        ++shortcuts;
        if (perform) AddOverlayArc(u, t, via, -1, ia.arc, oa.arc);
      }
    }
    return shortcuts;
  }

  /// Edge difference (shortcuts added minus arcs removed), weighted, plus
  /// the deleted-neighbors term for uniformity of contraction.
  int64_t Priority(NodeId v) {
    int removed = static_cast<int>(in_[static_cast<size_t>(v)].size() +
                                   out_[static_cast<size_t>(v)].size());
    int shortcuts = SimulateContract(v, /*perform=*/false);
    return 2 * (static_cast<int64_t>(shortcuts) - removed) +
           deleted_neighbors_[static_cast<size_t>(v)];
  }

  void Contract(NodeId v) {
    SimulateContract(v, /*perform=*/true);
    contracted_[static_cast<size_t>(v)] = true;
    // Detach v so later witness searches and priorities see only the
    // remaining overlay; bump the deleted-neighbors heuristic.
    for (const OverlayArc& ia : in_[static_cast<size_t>(v)]) {
      auto& lst = out_[static_cast<size_t>(ia.other)];
      lst.erase(std::remove_if(lst.begin(), lst.end(),
                               [v](const OverlayArc& a) { return a.other == v; }),
                lst.end());
      ++deleted_neighbors_[static_cast<size_t>(ia.other)];
    }
    for (const OverlayArc& oa : out_[static_cast<size_t>(v)]) {
      auto& lst = in_[static_cast<size_t>(oa.other)];
      lst.erase(std::remove_if(lst.begin(), lst.end(),
                               [v](const OverlayArc& a) { return a.other == v; }),
                lst.end());
      ++deleted_neighbors_[static_cast<size_t>(oa.other)];
    }
  }

  const RoadNetwork& net_;
  ContractionHierarchyOptions opt_;
  size_t n_;
  std::vector<std::vector<OverlayArc>> out_;
  std::vector<std::vector<OverlayArc>> in_;
  std::vector<bool> contracted_;
  std::vector<int> deleted_neighbors_;
  std::vector<uint32_t> rank_;
  std::vector<ContractionHierarchy::Arc> arcs_;
  WitnessSpace ws_;
};

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool ParseI64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool ParseF64(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

const std::vector<std::string>& ChCsvHeader() {
  static const std::vector<std::string> kHeader = {
      "record", "f1", "f2", "f3", "f4", "f5", "f6"};
  return kHeader;
}

Status Corrupt(const std::string& context, const std::string& detail) {
  return Status::FailedPrecondition("hierarchy file " + context +
                                    " is corrupt: " + detail);
}

}  // namespace

Result<ContractionHierarchy> ContractionHierarchy::Build(
    const RoadNetwork& network, const ContractionHierarchyOptions& options) {
  if (network.NumNodes() == 0) {
    return Status::InvalidArgument(
        "ContractionHierarchy::Build: empty network");
  }
  if (options.witness_settle_limit == 0 || options.witness_hop_limit == 0) {
    return Status::InvalidArgument(
        "ContractionHierarchy::Build: witness limits must be positive");
  }
  ScopedLatencyTimer timer(&ChBuildLatency());
  Contractor contractor(network, options);
  contractor.Run();
  ContractionHierarchy ch;
  ch.rank_ = contractor.TakeRanks();
  ch.arcs_ = contractor.TakeArcs();
  ch.num_edges_ = network.NumEdges();
  ch.num_shortcuts_ = 0;
  for (const Arc& a : ch.arcs_) {
    if (a.edge < 0) ++ch.num_shortcuts_;
  }
  ch.BuildSearchGraphs();
  ChBuilds().Increment();
  ChShortcutsBuilt().Increment(ch.num_shortcuts_);
  return ch;
}

void ContractionHierarchy::BuildSearchGraphs() {
  size_t n = rank_.size();
  up_.assign(n, {});
  rev_up_.assign(n, {});
  for (size_t i = 0; i < arcs_.size(); ++i) {
    const Arc& a = arcs_[i];
    UpArc ua;
    ua.weight = a.weight;
    ua.arc = static_cast<int32_t>(i);
    if (rank_[static_cast<size_t>(a.from)] < rank_[static_cast<size_t>(a.to)]) {
      ua.to = a.to;
      up_[static_cast<size_t>(a.from)].push_back(ua);
    } else {
      ua.to = a.from;
      rev_up_[static_cast<size_t>(a.to)].push_back(ua);
    }
  }
}

Status ContractionHierarchy::Search(NodeId src, NodeId dst,
                                    const RequestContext* ctx, NodeId* meet,
                                    double* dist) const {
  STMAKER_RETURN_IF_ERROR(CheckContext(ctx));
  ChSearches().Increment();
  ExpansionCounter expanded{ChNodesExpanded()};
  const size_t budget = ctx == nullptr ? 0 : ctx->max_node_expansions;
  CancelCheck check(ctx);
  QuerySpace& qs = g_query_space;
  qs.Begin(rank_.size());
  qs.Set(0, src, 0.0, -1);
  qs.Set(1, dst, 0.0, -1);
  MinQueue pq[2];
  pq[0].push({0.0, src});
  pq[1].push({0.0, dst});
  double best = kInf;
  NodeId best_meet = -1;
  while (!pq[0].empty() || !pq[1].empty()) {
    // Advance the side with the smaller tentative distance; a side whose
    // queue minimum already exceeds the best meeting distance can never
    // improve it (upward weights are non-negative) and is drained.
    int d;
    if (pq[0].empty()) {
      d = 1;
    } else if (pq[1].empty()) {
      d = 0;
    } else {
      d = pq[0].top().first <= pq[1].top().first ? 0 : 1;
    }
    auto [du, u] = pq[d].top();
    pq[d].pop();
    if (du >= best) {
      pq[d] = MinQueue();
      continue;
    }
    if (du > qs.Dist(d, u)) continue;  // stale entry
    STMAKER_RETURN_IF_ERROR(check.Tick());
    ++expanded.expansions;
    if (budget > 0 && expanded.expansions > budget) {
      return BudgetExhausted(budget);
    }
    // Stall-on-demand: if u is reachable more cheaply through a
    // higher-ranked node via a downward arc, no shortest up-down path goes
    // up through u — skip it entirely.
    const auto& down = d == 0 ? rev_up_ : up_;
    bool stalled = false;
    for (const UpArc& da : down[static_cast<size_t>(u)]) {
      if (qs.Dist(d, da.to) + da.weight < du) {
        stalled = true;
        break;
      }
    }
    if (stalled) continue;
    double other = qs.Dist(1 - d, u);
    if (other != kInf && du + other < best) {
      best = du + other;
      best_meet = u;
    }
    const auto& graph = d == 0 ? up_ : rev_up_;
    for (const UpArc& ua : graph[static_cast<size_t>(u)]) {
      double nd = du + ua.weight;
      if (nd < qs.Dist(d, ua.to)) {
        qs.Set(d, ua.to, nd, ua.arc);
        pq[d].push({nd, ua.to});
      }
    }
  }
  if (best == kInf) {
    return Status::NotFound("no route between the given nodes");
  }
  *meet = best_meet;
  *dist = best;
  return Status::OK();
}

Result<double> ContractionHierarchy::Distance(NodeId src, NodeId dst,
                                              const RequestContext* ctx) const {
  size_t n = rank_.size();
  if (src < 0 || static_cast<size_t>(src) >= n || dst < 0 ||
      static_cast<size_t>(dst) >= n) {
    return Status::InvalidArgument("Distance: node id out of range");
  }
  ScopedSpan span(TraceOf(ctx), "ch_route", &ChRouteLatency());
  NodeId meet = -1;
  double dist = kInf;
  STMAKER_RETURN_IF_ERROR(Search(src, dst, ctx, &meet, &dist));
  return dist;
}

void ContractionHierarchy::Unpack(int32_t arc, std::vector<NodeId>* nodes,
                                  std::vector<EdgeId>* edges) const {
  std::vector<int32_t> stack;
  stack.push_back(arc);
  while (!stack.empty()) {
    int32_t i = stack.back();
    stack.pop_back();
    const Arc& a = arcs_[static_cast<size_t>(i)];
    if (a.edge >= 0) {
      edges->push_back(a.edge);
      nodes->push_back(a.to);
    } else {
      stack.push_back(a.right);  // popped after left: left-to-right order
      stack.push_back(a.left);
    }
  }
}

Result<Path> ContractionHierarchy::Route(NodeId src, NodeId dst,
                                         const RequestContext* ctx) const {
  size_t n = rank_.size();
  if (src < 0 || static_cast<size_t>(src) >= n || dst < 0 ||
      static_cast<size_t>(dst) >= n) {
    return Status::InvalidArgument("Route: node id out of range");
  }
  ScopedSpan span(TraceOf(ctx), "ch_route", &ChRouteLatency());
  NodeId meet = -1;
  double dist = kInf;
  STMAKER_RETURN_IF_ERROR(Search(src, dst, ctx, &meet, &dist));
  const QuerySpace& qs = g_query_space;  // still holds this search's parents
  std::vector<int32_t> fwd_arcs;
  for (NodeId at = meet;;) {
    int32_t a = qs.parent[0][static_cast<size_t>(at)];
    if (a < 0) break;
    fwd_arcs.push_back(a);
    at = arcs_[static_cast<size_t>(a)].from;
  }
  std::reverse(fwd_arcs.begin(), fwd_arcs.end());
  Path path;
  path.cost = dist;
  path.nodes.push_back(src);
  for (int32_t a : fwd_arcs) Unpack(a, &path.nodes, &path.edges);
  for (NodeId at = meet;;) {
    int32_t a = qs.parent[1][static_cast<size_t>(at)];
    if (a < 0) break;
    Unpack(a, &path.nodes, &path.edges);
    at = arcs_[static_cast<size_t>(a)].to;
  }
  STMAKER_DCHECK(path.nodes.back() == dst);
  return path;
}

Result<std::vector<std::vector<double>>> ContractionHierarchy::BatchRoutes(
    std::span<const NodeId> sources, std::span<const NodeId> targets,
    const RequestContext* ctx) const {
  size_t n = rank_.size();
  for (NodeId s : sources) {
    if (s < 0 || static_cast<size_t>(s) >= n) {
      return Status::InvalidArgument("BatchRoutes: source id out of range");
    }
  }
  for (NodeId t : targets) {
    if (t < 0 || static_cast<size_t>(t) >= n) {
      return Status::InvalidArgument("BatchRoutes: target id out of range");
    }
  }
  STMAKER_RETURN_IF_ERROR(CheckContext(ctx));
  ScopedSpan span(TraceOf(ctx), "ch_batch", &ChBatchLatency());
  ChBatchTables().Increment();
  ChBatchPairs().Increment(
      static_cast<uint64_t>(sources.size()) * targets.size());
  ExpansionCounter expanded{ChNodesExpanded()};
  const size_t budget = ctx == nullptr ? 0 : ctx->max_node_expansions;
  CancelCheck check(ctx);
  QuerySpace& qs = g_query_space;

  // Bucket phase: one full backward upward search per target; every node it
  // settles remembers (target index, distance-to-target).
  std::vector<std::vector<std::pair<uint32_t, double>>> buckets(n);
  auto upward = [&](int side, NodeId origin,
                    auto&& on_settled) -> Status {
    qs.Begin(n);
    qs.Set(side, origin, 0.0, -1);
    MinQueue pq;
    pq.push({0.0, origin});
    const auto& graph = side == 0 ? up_ : rev_up_;
    while (!pq.empty()) {
      auto [du, u] = pq.top();
      pq.pop();
      if (du > qs.Dist(side, u)) continue;
      STMAKER_RETURN_IF_ERROR(check.Tick());
      ++expanded.expansions;
      if (budget > 0 && expanded.expansions > budget) {
        return BudgetExhausted(budget);
      }
      on_settled(u, du);
      for (const UpArc& ua : graph[static_cast<size_t>(u)]) {
        double nd = du + ua.weight;
        if (nd < qs.Dist(side, ua.to)) {
          qs.Set(side, ua.to, nd, ua.arc);
          pq.push({nd, ua.to});
        }
      }
    }
    return Status::OK();
  };

  for (size_t j = 0; j < targets.size(); ++j) {
    STMAKER_RETURN_IF_ERROR(upward(1, targets[j], [&](NodeId u, double du) {
      buckets[static_cast<size_t>(u)].push_back(
          {static_cast<uint32_t>(j), du});
    }));
  }

  // Scan phase: one forward upward search per source; each settled node's
  // bucket entries close source->node->target paths.
  std::vector<std::vector<double>> table(
      sources.size(), std::vector<double>(targets.size(), kInf));
  for (size_t i = 0; i < sources.size(); ++i) {
    std::vector<double>& row = table[i];
    STMAKER_RETURN_IF_ERROR(upward(0, sources[i], [&](NodeId u, double du) {
      for (const auto& [j, db] : buckets[static_cast<size_t>(u)]) {
        double cand = du + db;
        if (cand < row[j]) row[j] = cand;
      }
    }));
  }
  return table;
}

std::string ContractionHierarchy::SaveToString() const {
  CsvBuilder csv;
  csv.Row(ChCsvHeader());
  csv.Row({"meta", std::to_string(rank_.size()), std::to_string(num_edges_),
           std::to_string(arcs_.size()), std::to_string(num_shortcuts_), "0",
           "0"});
  for (size_t v = 0; v < rank_.size(); ++v) {
    csv.Row({"rank", std::to_string(v), std::to_string(rank_[v]), "0", "0",
             "0", "0"});
  }
  for (const Arc& a : arcs_) {
    csv.Row({"arc", std::to_string(a.from), std::to_string(a.to),
             FormatDouble(a.weight), std::to_string(a.edge),
             std::to_string(a.left), std::to_string(a.right)});
  }
  std::string body = csv.TakeString();
  uint32_t crc = Crc32(body);
  body += FormatCsvRow({"crc", std::to_string(crc), "0", "0", "0", "0", "0"});
  return body;
}

Status ContractionHierarchy::SaveToFile(const std::string& path) const {
  return WriteFileAtomic(path, SaveToString());
}

Result<ContractionHierarchy> ContractionHierarchy::LoadFromString(
    const std::string& content, const RoadNetwork& network,
    const std::string& context) {
  STMAKER_ASSIGN_OR_RETURN(auto rows,
                           ParseCsvTable(content, ChCsvHeader(), context));
  if (rows.size() < 2) return Corrupt(context, "missing meta or crc record");
  // The CRC record must be the last row and must cover every byte before
  // its own line.
  const auto& crc_row = rows.back();
  if (crc_row[0] != "crc") return Corrupt(context, "missing trailing crc");
  int64_t stored_crc = 0;
  if (!ParseI64(crc_row[1], &stored_crc) || stored_crc < 0 ||
      stored_crc > 0xFFFFFFFFLL) {
    return Corrupt(context, "unparseable crc");
  }
  size_t crc_pos = content.rfind("\ncrc,");
  if (crc_pos == std::string::npos) {
    return Corrupt(context, "crc record not at line start");
  }
  std::string_view body(content.data(), crc_pos + 1);
  if (Crc32(body) != static_cast<uint32_t>(stored_crc)) {
    return Corrupt(context, "crc mismatch (truncated or edited file)");
  }

  const auto& meta = rows.front();
  if (meta[0] != "meta") return Corrupt(context, "first record is not meta");
  int64_t nodes = 0, edges = 0, arc_count = 0, shortcut_count = 0;
  if (!ParseI64(meta[1], &nodes) || !ParseI64(meta[2], &edges) ||
      !ParseI64(meta[3], &arc_count) || !ParseI64(meta[4], &shortcut_count) ||
      nodes < 0 || edges < 0 || arc_count < 0 || shortcut_count < 0) {
    return Corrupt(context, "unparseable meta record");
  }
  if (static_cast<size_t>(nodes) != network.NumNodes() ||
      static_cast<size_t>(edges) != network.NumEdges()) {
    return Corrupt(context,
                   "hierarchy was built for a different network (" +
                       std::to_string(nodes) + " nodes/" +
                       std::to_string(edges) + " edges vs " +
                       std::to_string(network.NumNodes()) + "/" +
                       std::to_string(network.NumEdges()) + ")");
  }
  size_t expected_rows = 1 + static_cast<size_t>(nodes) +
                         static_cast<size_t>(arc_count) + 1;
  if (rows.size() != expected_rows) {
    return Corrupt(context, "record count mismatch");
  }

  std::vector<uint32_t> rank(static_cast<size_t>(nodes), 0);
  size_t row_i = 1;
  for (int64_t k = 0; k < nodes; ++k, ++row_i) {
    const auto& r = rows[row_i];
    int64_t node = 0, rank_v = 0;
    if (r[0] != "rank" || !ParseI64(r[1], &node) ||
        !ParseI64(r[2], &rank_v) || node != k || rank_v < 0 ||
        rank_v >= nodes) {
      return Corrupt(context, "bad rank record at row " + std::to_string(k));
    }
    rank[static_cast<size_t>(node)] = static_cast<uint32_t>(rank_v);
  }

  std::vector<Arc> arcs;
  arcs.reserve(static_cast<size_t>(arc_count));
  for (int64_t k = 0; k < arc_count; ++k, ++row_i) {
    const auto& r = rows[row_i];
    Arc a;
    int64_t from = 0, to = 0, edge = 0, left = 0, right = 0;
    double weight = 0;
    if (r[0] != "arc" || !ParseI64(r[1], &from) || !ParseI64(r[2], &to) ||
        !ParseF64(r[3], &weight) || !ParseI64(r[4], &edge) ||
        !ParseI64(r[5], &left) || !ParseI64(r[6], &right)) {
      return Corrupt(context, "bad arc record at row " + std::to_string(k));
    }
    constexpr int64_t kI32Max = std::numeric_limits<int32_t>::max();
    if (left < -1 || left > kI32Max || right < -1 || right > kI32Max) {
      return Corrupt(context, "shortcut " + std::to_string(k) + " malformed");
    }
    a.from = from;
    a.to = to;
    a.weight = weight;
    a.edge = edge;
    a.left = static_cast<int32_t>(left);
    a.right = static_cast<int32_t>(right);
    arcs.push_back(a);
  }
  // Semantic validation (shared with the binary-container load path).
  return FromParts(std::move(rank), std::move(arcs),
                   static_cast<size_t>(shortcut_count), network, context);
}

Result<ContractionHierarchy> ContractionHierarchy::FromRaw(
    std::span<const uint32_t> rank, std::span<const Arc> arcs,
    size_t declared_num_edges, size_t declared_shortcuts,
    const RoadNetwork& network, const std::string& context) {
  if (rank.size() != network.NumNodes() ||
      declared_num_edges != network.NumEdges()) {
    return Corrupt(context,
                   "hierarchy was built for a different network (" +
                       std::to_string(rank.size()) + " nodes/" +
                       std::to_string(declared_num_edges) + " edges vs " +
                       std::to_string(network.NumNodes()) + "/" +
                       std::to_string(network.NumEdges()) + ")");
  }
  return FromParts(std::vector<uint32_t>(rank.begin(), rank.end()),
                   std::vector<Arc>(arcs.begin(), arcs.end()),
                   declared_shortcuts, network, context);
}

Result<ContractionHierarchy> ContractionHierarchy::FromParts(
    std::vector<uint32_t> rank, std::vector<Arc> arcs,
    size_t declared_shortcuts, const RoadNetwork& network,
    const std::string& context) {
  const int64_t nodes = static_cast<int64_t>(network.NumNodes());
  const int64_t edges = static_cast<int64_t>(network.NumEdges());
  if (rank.size() != static_cast<size_t>(nodes)) {
    return Corrupt(context, "rank table size mismatch");
  }
  std::vector<bool> rank_seen(static_cast<size_t>(nodes), false);
  for (int64_t v = 0; v < nodes; ++v) {
    const uint32_t rk = rank[static_cast<size_t>(v)];
    if (rk >= static_cast<uint64_t>(nodes)) {
      return Corrupt(context, "bad rank record at row " + std::to_string(v));
    }
    if (rank_seen[rk]) {
      return Corrupt(context, "duplicate rank " + std::to_string(rk));
    }
    rank_seen[rk] = true;
  }

  size_t shortcuts = 0;
  for (size_t k = 0; k < arcs.size(); ++k) {
    const Arc& a = arcs[k];
    if (a.from < 0 || a.from >= nodes || a.to < 0 || a.to >= nodes ||
        a.from == a.to || !std::isfinite(a.weight) || a.weight < 0) {
      return Corrupt(context,
                     "arc " + std::to_string(k) + " endpoints/weight invalid");
    }
    if (a.edge >= 0) {
      // Original arc: must correspond to a real, traversable edge.
      if (a.left != -1 || a.right != -1 || a.edge >= edges) {
        return Corrupt(context, "arc " + std::to_string(k) + " malformed");
      }
      const RoadEdge& e = network.edge(a.edge);
      bool forward = e.from == a.from && e.to == a.to;
      bool backward = e.from == a.to && e.to == a.from &&
                      e.direction == TrafficDirection::kTwoWay;
      if (!forward && !backward) {
        return Corrupt(context, "arc " + std::to_string(k) +
                                    " does not match its road edge");
      }
      if (std::abs(a.weight - e.length_m) >
          1e-9 * std::max(1.0, e.length_m)) {
        return Corrupt(context, "arc " + std::to_string(k) +
                                    " weight disagrees with edge length");
      }
    } else {
      // Shortcut: constituents must be earlier arcs forming a chain of
      // matching endpoints and weights.
      if (a.edge != -1 || a.left < 0 ||
          static_cast<size_t>(a.left) >= k || a.right < 0 ||
          static_cast<size_t>(a.right) >= k) {
        return Corrupt(context,
                       "shortcut " + std::to_string(k) + " malformed");
      }
      const Arc& l = arcs[static_cast<size_t>(a.left)];
      const Arc& rr = arcs[static_cast<size_t>(a.right)];
      if (l.from != a.from || l.to != rr.from || rr.to != a.to) {
        return Corrupt(context, "shortcut " + std::to_string(k) +
                                    " constituents do not chain");
      }
      if (std::abs(a.weight - (l.weight + rr.weight)) >
          1e-6 * std::max(1.0, a.weight)) {
        return Corrupt(context, "shortcut " + std::to_string(k) +
                                    " weight disagrees with constituents");
      }
      ++shortcuts;
    }
  }
  if (shortcuts != declared_shortcuts) {
    return Corrupt(context, "shortcut count mismatch");
  }

  ContractionHierarchy ch;
  ch.rank_ = std::move(rank);
  ch.arcs_ = std::move(arcs);
  ch.num_edges_ = static_cast<size_t>(edges);
  ch.num_shortcuts_ = shortcuts;
  ch.BuildSearchGraphs();
  return ch;
}

Result<ContractionHierarchy> ContractionHierarchy::LoadFromFile(
    const std::string& path, const RoadNetwork& network) {
  STMAKER_ASSIGN_OR_RETURN(std::string content, ReadFileToString(path));
  return LoadFromString(content, network, path);
}

}  // namespace stmaker
