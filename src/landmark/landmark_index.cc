#include "landmark/landmark_index.h"

#include <map>
#include <set>
#include <string>

#include "common/check.h"
#include "common/strings.h"

namespace stmaker {

namespace {

// Names a junction after the (up to two) distinct road names crossing there.
std::string JunctionName(const RoadNetwork& net, NodeId node) {
  std::set<std::string> names;
  for (const Adjacency& adj : net.OutEdges(node)) {
    names.insert(net.edge(adj.edge).name);
    if (names.size() == 2) break;
  }
  // One-way streets may leave a node with no out-edges; look at all edges.
  if (names.size() < 2) {
    for (const RoadEdge& e : net.edges()) {
      if (e.from == node || e.to == node) names.insert(e.name);
      if (names.size() == 2) break;
    }
  }
  if (names.empty()) return StrFormat("Junction %lld", (long long)node);
  auto it = names.begin();
  if (names.size() == 1) return *it + " corner";
  std::string first = *it++;
  return first + " / " + *it;
}

}  // namespace

LandmarkIndex LandmarkIndex::Build(const RoadNetwork& network,
                                   const std::vector<RawPoi>& pois,
                                   const LandmarkIndexOptions& options) {
  LandmarkIndex out;
  out.node_to_landmark_.assign(network.NumNodes(), -1);

  // --- POI cluster landmarks. -----------------------------------------------
  std::vector<Vec2> positions;
  positions.reserve(pois.size());
  for (const RawPoi& p : pois) positions.push_back(p.pos);
  DbscanResult clusters = Dbscan(positions, options.dbscan);
  std::vector<Vec2> centroids = ClusterCentroids(positions, clusters);

  // Majority name per cluster.
  std::vector<std::map<std::string, int>> name_votes(clusters.num_clusters);
  for (size_t i = 0; i < pois.size(); ++i) {
    int c = clusters.labels[i];
    if (c == kDbscanNoise) continue;
    name_votes[c][pois[i].name]++;
  }

  for (int c = 0; c < clusters.num_clusters; ++c) {
    std::string best_name;
    int best_votes = -1;
    for (const auto& [name, votes] : name_votes[c]) {
      if (votes > best_votes) {
        best_votes = votes;
        best_name = name;
      }
    }
    Landmark lm;
    lm.id = static_cast<LandmarkId>(out.landmarks_.size());
    lm.pos = centroids[c];
    lm.name = best_name;
    lm.kind = LandmarkKind::kPoi;
    out.landmarks_.push_back(std::move(lm));
    out.network_node_.push_back(-1);
  }

  // --- Turning-point landmarks. ---------------------------------------------
  for (const RoadNode& node : network.nodes()) {
    if (!node.is_turning_point) continue;
    Landmark lm;
    lm.id = static_cast<LandmarkId>(out.landmarks_.size());
    lm.pos = node.pos;
    lm.name = JunctionName(network, node.id);
    lm.kind = LandmarkKind::kTurningPoint;
    out.node_to_landmark_[node.id] = lm.id;
    out.landmarks_.push_back(std::move(lm));
    out.network_node_.push_back(node.id);
  }

  // --- Spatial index. ---------------------------------------------------------
  out.index_cell_m_ = options.index_cell_m;
  out.index_ = std::make_unique<GridIndex>(options.index_cell_m);
  for (const Landmark& lm : out.landmarks_) {
    out.index_->Insert(lm.id, lm.pos);
  }
  return out;
}

Result<LandmarkIndex> LandmarkIndex::FromParts(
    std::vector<Landmark> landmarks, std::vector<NodeId> network_node,
    size_t num_network_nodes, double index_cell_m) {
  auto fail = [](const std::string& what) {
    return Status::InvalidArgument("container landmarks: " + what);
  };
  if (network_node.size() != landmarks.size()) {
    return fail("network-node array size mismatch");
  }
  if (!(index_cell_m > 0)) return fail("non-positive index cell size");
  LandmarkIndex out;
  out.node_to_landmark_.assign(num_network_nodes, -1);
  for (size_t i = 0; i < landmarks.size(); ++i) {
    const Landmark& lm = landmarks[i];
    const NodeId node = network_node[i];
    if (lm.id != static_cast<LandmarkId>(i)) {
      return fail("landmark ids must be dense");
    }
    if (lm.kind == LandmarkKind::kTurningPoint) {
      if (node < 0 || static_cast<size_t>(node) >= num_network_nodes) {
        return fail("turning-point landmark node out of range");
      }
      if (out.node_to_landmark_[node] != -1) {
        return fail("two landmarks claim one network node");
      }
      out.node_to_landmark_[node] = lm.id;
    } else if (node != -1) {
      return fail("POI landmark carries a network node");
    }
  }
  out.landmarks_ = std::move(landmarks);
  out.network_node_ = std::move(network_node);
  out.index_cell_m_ = index_cell_m;
  out.index_ = std::make_unique<GridIndex>(index_cell_m);
  for (const Landmark& lm : out.landmarks_) {
    out.index_->Insert(lm.id, lm.pos);
  }
  return out;
}

const Landmark& LandmarkIndex::landmark(LandmarkId id) const {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < landmarks_.size());
  return landmarks_[id];
}

std::vector<LandmarkId> LandmarkIndex::WithinRadius(const Vec2& p,
                                                    double radius) const {
  return index_->WithinRadius(p, radius);
}

void LandmarkIndex::AppendWithinRadius(const Vec2& p, double radius,
                                       std::vector<LandmarkId>* out) const {
  index_->AppendWithinRadius(p, radius, out);
}

LandmarkId LandmarkIndex::Nearest(const Vec2& p, double max_radius) const {
  return index_->Nearest(p, max_radius);
}

void LandmarkIndex::SetSignificance(LandmarkId id, double significance) {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < landmarks_.size());
  landmarks_[id].significance = significance;
}

NodeId LandmarkIndex::network_node(LandmarkId id) const {
  STMAKER_CHECK(id >= 0 && static_cast<size_t>(id) < network_node_.size());
  return network_node_[id];
}

LandmarkId LandmarkIndex::LandmarkOfNode(NodeId node) const {
  if (node < 0 || static_cast<size_t>(node) >= node_to_landmark_.size()) {
    return -1;
  }
  return node_to_landmark_[node];
}

}  // namespace stmaker
