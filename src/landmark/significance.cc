#include "landmark/significance.h"

#include <cmath>

#include "common/check.h"

namespace stmaker {

SignificanceModel::SignificanceModel(size_t num_travelers,
                                     size_t num_landmarks)
    : num_landmarks_(num_landmarks),
      visits_by_traveler_(num_travelers) {}

void SignificanceModel::AddVisit(int64_t traveler, LandmarkId landmark) {
  STMAKER_CHECK(traveler >= 0);
  if (static_cast<size_t>(traveler) >= visits_by_traveler_.size()) {
    visits_by_traveler_.resize(static_cast<size_t>(traveler) + 1);
  }
  STMAKER_CHECK(landmark >= 0 &&
                static_cast<size_t>(landmark) < num_landmarks_);
  auto& visits = visits_by_traveler_[traveler];
  for (auto& [lm, count] : visits) {
    if (lm == landmark) {
      count += 1.0;
      return;
    }
  }
  visits.emplace_back(landmark, 1.0);
}

std::vector<double> SignificanceModel::Compute(int iterations) const {
  const size_t num_travelers = visits_by_traveler_.size();
  std::vector<double> hub(num_landmarks_, 1.0);    // landmarks
  std::vector<double> auth(num_travelers, 1.0);    // travellers
  for (int it = 0; it < iterations; ++it) {
    // auth(u) = sum over visited landmarks of hub(l).
    for (size_t u = 0; u < num_travelers; ++u) {
      double a = 0;
      for (const auto& [lm, count] : visits_by_traveler_[u]) {
        a += count * hub[lm];
      }
      auth[u] = a;
    }
    // hub(l) = sum over visiting travellers of auth(u).
    std::vector<double> new_hub(num_landmarks_, 0.0);
    for (size_t u = 0; u < num_travelers; ++u) {
      for (const auto& [lm, count] : visits_by_traveler_[u]) {
        new_hub[lm] += count * auth[u];
      }
    }
    hub.swap(new_hub);
    // L2-normalize both to keep the iteration bounded.
    auto normalize = [](std::vector<double>* v) {
      double norm = 0;
      for (double x : *v) norm += x * x;
      norm = std::sqrt(norm);
      if (norm > 0) {
        for (double& x : *v) x /= norm;
      }
    };
    normalize(&hub);
    normalize(&auth);
  }
  // Max-normalize to [0, 1] for use as l.s.
  double max_hub = 0;
  for (double h : hub) max_hub = std::max(max_hub, h);
  if (max_hub > 0) {
    for (double& h : hub) h /= max_hub;
  }
  return hub;
}

void SignificanceModel::Apply(LandmarkIndex* index, int iterations) const {
  STMAKER_CHECK(index != nullptr);
  STMAKER_CHECK(index->size() == num_landmarks_);
  std::vector<double> scores = Compute(iterations);
  for (size_t i = 0; i < scores.size(); ++i) {
    index->SetSignificance(static_cast<LandmarkId>(i), scores[i]);
  }
}

}  // namespace stmaker
