#include "landmark/significance.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace stmaker {

SignificanceModel::SignificanceModel(size_t num_travelers,
                                     size_t num_landmarks)
    : num_landmarks_(num_landmarks),
      visits_by_traveler_(num_travelers) {}

void SignificanceModel::AddVisit(int64_t traveler, LandmarkId landmark) {
  AddVisitWeight(traveler, landmark, 1.0);
}

void SignificanceModel::AddVisitWeight(int64_t traveler, LandmarkId landmark,
                                       double weight) {
  STMAKER_CHECK(traveler >= 0);
  STMAKER_CHECK(weight > 0);
  if (static_cast<size_t>(traveler) >= visits_by_traveler_.size()) {
    visits_by_traveler_.resize(static_cast<size_t>(traveler) + 1);
  }
  STMAKER_CHECK(landmark >= 0 &&
                static_cast<size_t>(landmark) < num_landmarks_);
  auto& visits = visits_by_traveler_[traveler];
  for (auto& [lm, count] : visits) {
    if (lm == landmark) {
      count += weight;
      return;
    }
  }
  visits.emplace_back(landmark, weight);
}

std::vector<double> SignificanceModel::Compute(int iterations) const {
  const size_t num_travelers = visits_by_traveler_.size();
  std::vector<double> hub(num_landmarks_, 1.0);    // landmarks
  std::vector<double> auth(num_travelers, 1.0);    // travellers
  for (int it = 0; it < iterations; ++it) {
    // auth(u) = sum over visited landmarks of hub(l).
    for (size_t u = 0; u < num_travelers; ++u) {
      double a = 0;
      for (const auto& [lm, count] : visits_by_traveler_[u]) {
        a += count * hub[lm];
      }
      auth[u] = a;
    }
    // hub(l) = sum over visiting travellers of auth(u).
    std::vector<double> new_hub(num_landmarks_, 0.0);
    for (size_t u = 0; u < num_travelers; ++u) {
      for (const auto& [lm, count] : visits_by_traveler_[u]) {
        new_hub[lm] += count * auth[u];
      }
    }
    hub.swap(new_hub);
    // L2-normalize both to keep the iteration bounded.
    auto normalize = [](std::vector<double>* v) {
      double norm = 0;
      for (double x : *v) norm += x * x;
      norm = std::sqrt(norm);
      if (norm > 0) {
        for (double& x : *v) x /= norm;
      }
    };
    normalize(&hub);
    normalize(&auth);
  }
  // Max-normalize to [0, 1] for use as l.s.
  double max_hub = 0;
  for (double h : hub) max_hub = std::max(max_hub, h);
  if (max_hub > 0) {
    for (double& h : hub) h /= max_hub;
  }
  return hub;
}

void SignificanceModel::Apply(LandmarkIndex* index, int iterations) const {
  STMAKER_CHECK(index != nullptr);
  STMAKER_CHECK(index->size() == num_landmarks_);
  std::vector<double> scores = Compute(iterations);
  for (size_t i = 0; i < scores.size(); ++i) {
    index->SetSignificance(static_cast<LandmarkId>(i), scores[i]);
  }
}

VisitCorpus::Record& VisitCorpus::RecordFor(int64_t key) {
  auto [it, inserted] = index_.emplace(key, records_.size());
  if (inserted) {
    records_.push_back(Record{key, {}});
  }
  return records_[it->second];
}

void VisitCorpus::AddTrajectory(int64_t raw_traveler,
                                const std::vector<LandmarkId>& landmarks) {
  int64_t key = raw_traveler >= 0 ? raw_traveler : -(++anonymous_counter_);
  Record& record = RecordFor(key);
  for (LandmarkId lm : landmarks) {
    // Coalesce onto the first-seen pair, mirroring
    // SignificanceModel::AddVisit so BuildModel reproduces the multigraph
    // an incremental AddVisit stream would have built.
    bool found = false;
    for (auto& [existing, count] : record.visits) {
      if (existing == lm) {
        count += 1.0;
        found = true;
        break;
      }
    }
    if (!found) record.visits.emplace_back(lm, 1.0);
  }
}

void VisitCorpus::AddVisitCount(int64_t key, LandmarkId landmark,
                                double count) {
  STMAKER_CHECK(count > 0);
  if (key < 0) anonymous_counter_ = std::max(anonymous_counter_, -key);
  Record& record = RecordFor(key);
  for (auto& [existing, c] : record.visits) {
    if (existing == landmark) {
      c += count;
      return;
    }
  }
  record.visits.emplace_back(landmark, count);
}

void VisitCorpus::Merge(const VisitCorpus& other) {
  for (const Record& record : other.records_) {
    if (record.key < 0) {
      // Anonymous travellers stay distinct across shards: allocate the
      // next master key in replay order, matching what a serial ingest
      // would have assigned.
      Record& fresh = RecordFor(-(++anonymous_counter_));
      fresh.visits = record.visits;
      continue;
    }
    Record& mine = RecordFor(record.key);
    for (const auto& [lm, count] : record.visits) {
      bool found = false;
      for (auto& [existing, c] : mine.visits) {
        if (existing == lm) {
          c += count;
          found = true;
          break;
        }
      }
      if (!found) mine.visits.emplace_back(lm, count);
    }
  }
}

SignificanceModel VisitCorpus::BuildModel(size_t num_landmarks) const {
  SignificanceModel model(records_.size(), num_landmarks);
  for (size_t t = 0; t < records_.size(); ++t) {
    for (const auto& [lm, count] : records_[t].visits) {
      model.AddVisitWeight(static_cast<int64_t>(t), lm, count);
    }
  }
  return model;
}

}  // namespace stmaker
