#include "landmark/poi_generator.h"

#include "common/check.h"
#include "common/random.h"
#include "common/strings.h"
#include "roadnet/map_generator.h"

namespace stmaker {

namespace {

const char* const kVenueTypes[] = {
    "Community", "Hospital",  "Park",     "Station", "Hotel",
    "School",    "Mall",      "Museum",   "Temple",  "Market",
    "Tower",     "Library",   "Stadium",  "Theater", "Plaza",
    "University", "Restaurant", "Garden", "Center",  "Bridge",
};

}  // namespace

PoiGenerator::PoiGenerator(const PoiGeneratorOptions& options)
    : options_(options) {
  STMAKER_CHECK(options.num_sites > 0);
  STMAKER_CHECK(options.min_pois_per_site >= 1);
  STMAKER_CHECK(options.max_pois_per_site >= options.min_pois_per_site);
}

std::vector<RawPoi> PoiGenerator::Generate(const RoadNetwork& network) const {
  Random rng(options_.seed);
  STMAKER_CHECK(network.NumNodes() > 0);

  // Site anchoring weight per node: capacity of the best adjoining road.
  std::vector<double> weights(network.NumNodes(), 0.0);
  for (NodeId id = 0; static_cast<size_t>(id) < network.NumNodes(); ++id) {
    double best = 0;
    for (const Adjacency& adj : network.OutEdges(id)) {
      // Grade 1 → 8 units of attraction, grade 7 → 2 units.
      double cap = 9.0 - static_cast<double>(network.edge(adj.edge).grade);
      best = std::max(best, cap);
    }
    weights[id] = best * best;  // Quadratic emphasis on big intersections.
  }

  const std::vector<std::string>& lexicon = MapGenerator::NameLexicon();
  const size_t num_types = std::size(kVenueTypes);

  std::vector<RawPoi> pois;
  for (int site = 0; site < options_.num_sites; ++site) {
    NodeId anchor = static_cast<NodeId>(rng.WeightedIndex(weights));
    // Offset the site away from the intersection center.
    Vec2 center = network.node(anchor).pos +
                  Vec2{rng.Normal(0, 120.0), rng.Normal(0, 120.0)};
    std::string name =
        lexicon[rng.UniformInt(lexicon.size())] + " " +
        kVenueTypes[rng.UniformInt(num_types)];
    int count = static_cast<int>(rng.UniformInt(
        static_cast<int64_t>(options_.min_pois_per_site),
        static_cast<int64_t>(options_.max_pois_per_site)));
    for (int k = 0; k < count; ++k) {
      Vec2 pos = center + Vec2{rng.Normal(0, options_.site_scatter_m),
                               rng.Normal(0, options_.site_scatter_m)};
      pois.push_back({pos, name});
    }
  }
  return pois;
}

}  // namespace stmaker
