#ifndef STMAKER_LANDMARK_LANDMARK_H_
#define STMAKER_LANDMARK_LANDMARK_H_

/// \file
/// The Landmark record: position, name, significance score.

#include <cstdint>
#include <string>

#include "geo/vec2.h"

namespace stmaker {

using LandmarkId = int64_t;

/// Where a landmark came from (Def. 2: a POI or a turning point of the road
/// network).
enum class LandmarkKind {
  kPoi,
  kTurningPoint,
};

/// A stable, trajectory-independent geographical anchor (Def. 2). The
/// significance field (l.s in the paper) is filled in by SignificanceModel
/// and drives partition boundaries.
struct Landmark {
  LandmarkId id = -1;
  Vec2 pos;
  std::string name;
  LandmarkKind kind = LandmarkKind::kPoi;
  double significance = 0;
};

}  // namespace stmaker

#endif  // STMAKER_LANDMARK_LANDMARK_H_
