#ifndef STMAKER_LANDMARK_POI_GENERATOR_H_
#define STMAKER_LANDMARK_POI_GENERATOR_H_

/// \file
/// Synthetic POI site generator over a road network.

#include <cstdint>
#include <string>
#include <vector>

#include "geo/vec2.h"
#include "roadnet/road_network.h"

namespace stmaker {

/// A raw point of interest before clustering (the stand-in for the paper's
/// 510k-entry third-party POI dataset).
struct RawPoi {
  Vec2 pos;
  std::string name;
};

/// Parameters of the synthetic POI dataset.
struct PoiGeneratorOptions {
  int num_sites = 800;           ///< POI sites (clusters) to scatter.
  int min_pois_per_site = 3;     ///< Raw POIs per site, lower bound.
  int max_pois_per_site = 12;    ///< Raw POIs per site, upper bound.
  double site_scatter_m = 45.0;  ///< Gaussian scatter within a site.
  uint64_t seed = 7;
};

/// \brief Scatters named POI sites over a road network.
///
/// Sites are anchored near intersections with probability proportional to
/// the transportation capacity of the adjoining roads (big roads attract
/// amenities), then each site emits several raw POIs with local scatter —
/// giving DBSCAN realistic density-clustered input. Site names combine a
/// locality (reusing the road-name lexicon) with a venue type ("Daoxiang
/// Community", "Haidian Hospital").
class PoiGenerator {
 public:
  explicit PoiGenerator(const PoiGeneratorOptions& options);

  /// Deterministically generates the raw POI set for `network`.
  std::vector<RawPoi> Generate(const RoadNetwork& network) const;

 private:
  PoiGeneratorOptions options_;
};

}  // namespace stmaker

#endif  // STMAKER_LANDMARK_POI_GENERATOR_H_
