#ifndef STMAKER_LANDMARK_SIGNIFICANCE_H_
#define STMAKER_LANDMARK_SIGNIFICANCE_H_

/// \file
/// HITS-like landmark significance model and the visit corpus behind it
/// (Sec. IV-B).

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "landmark/landmark_index.h"

namespace stmaker {

/// \brief HITS-like landmark significance (Sec. IV-B; Zheng et al. WWW'09
/// [41]).
///
/// Travellers are modelled as authorities, landmarks as hubs, and
/// check-ins/visits as hyperlinks between them. Power iteration with L2
/// normalization converges to the principal singular vectors of the visit
/// matrix; the landmark hub score, normalized to [0, 1] by its maximum, is
/// the significance l.s used by the partition potential.
class SignificanceModel {
 public:
  /// `num_landmarks` fixes the landmark score vector size; `num_travelers`
  /// is an initial capacity — AddVisit grows the traveller set on demand.
  SignificanceModel(size_t num_travelers, size_t num_landmarks);

  /// Records one visit (check-in) of `traveler` at `landmark`. Repeat visits
  /// accumulate weight; traveller ids beyond the current count grow the set.
  void AddVisit(int64_t traveler, LandmarkId landmark);

  /// Records `weight` visits at once (equivalent to `weight` AddVisit
  /// calls). Used when rebuilding the model from an aggregated VisitCorpus.
  void AddVisitWeight(int64_t traveler, LandmarkId landmark, double weight);

  /// Runs `iterations` of HITS power iteration and returns the landmark
  /// significance vector (max-normalized to [0, 1]). Landmarks with no
  /// visits get 0.
  std::vector<double> Compute(int iterations = 40) const;

  /// Convenience: Compute() and install the scores into `index`.
  void Apply(LandmarkIndex* index, int iterations = 40) const;

  size_t num_travelers() const { return visits_by_traveler_.size(); }
  size_t num_landmarks() const { return num_landmarks_; }

 private:
  size_t num_landmarks_;
  /// Sparse visit multigraph: (traveler, landmark, count).
  std::vector<std::vector<std::pair<int64_t, double>>> visits_by_traveler_;
};

/// \brief The raw landmark-visit corpus behind HITS significance: one
/// record per traveller, in first-seen order, accumulating per-landmark
/// visit counts across that traveller's trajectories.
///
/// STMaker keeps a VisitCorpus as the durable training state (it is what
/// SaveModel persists), shards it during parallel ingestion, and rebuilds
/// a SignificanceModel from it whenever significances must be recomputed.
/// Records carry the original traveller key; trajectories with no
/// traveller id get a fresh synthetic negative key (-1, -2, ...) so they
/// still contribute hub mass without conflating distinct vehicles.
///
/// Determinism: records keep insertion order and per-record visit pairs
/// keep first-visited order; Merge() replays `other`'s records in that
/// order. Merging per-shard corpora of a trajectory list split into
/// contiguous index blocks (shard 0 first) therefore reproduces exactly
/// the corpus a serial pass would build — traveller numbering, anonymous
/// key assignment, pair order, and (integral) counts alike.
///
/// Not internally synchronized; each ingestion shard owns a private
/// corpus and the merge is serial.
class VisitCorpus {
 public:
  /// One traveller's accumulated visits.
  struct Record {
    int64_t key = 0;  ///< Original traveller id, or -k for the k-th
                      ///< anonymous trajectory.
    std::vector<std::pair<LandmarkId, double>> visits;  ///< first-seen order
  };

  /// Records the landmark visits of one trajectory. `raw_traveler` >= 0
  /// accumulates onto that traveller's record; negative ids allocate a
  /// fresh anonymous record.
  void AddTrajectory(int64_t raw_traveler,
                     const std::vector<LandmarkId>& landmarks);

  /// Folds `other` into this corpus (see class comment for ordering).
  void Merge(const VisitCorpus& other);

  /// Adds `count` visits for the traveller with the given persistent key
  /// (deserialization hook; negative keys restore anonymous records and
  /// advance the anonymous counter).
  void AddVisitCount(int64_t key, LandmarkId landmark, double count);

  /// Builds the HITS model over this corpus; traveller i of the model is
  /// records()[i].
  SignificanceModel BuildModel(size_t num_landmarks) const;

  bool empty() const { return records_.empty(); }
  size_t num_travelers() const { return records_.size(); }
  const std::vector<Record>& records() const { return records_; }

 private:
  /// Find-or-create the record for `key`, preserving insertion order.
  Record& RecordFor(int64_t key);

  std::vector<Record> records_;
  std::unordered_map<int64_t, size_t> index_;  ///< key -> records_ index
  int64_t anonymous_counter_ = 0;
};

}  // namespace stmaker

#endif  // STMAKER_LANDMARK_SIGNIFICANCE_H_
