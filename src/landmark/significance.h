#ifndef STMAKER_LANDMARK_SIGNIFICANCE_H_
#define STMAKER_LANDMARK_SIGNIFICANCE_H_

#include <cstdint>
#include <vector>

#include "landmark/landmark_index.h"

namespace stmaker {

/// \brief HITS-like landmark significance (Sec. IV-B; Zheng et al. WWW'09
/// [41]).
///
/// Travellers are modelled as authorities, landmarks as hubs, and
/// check-ins/visits as hyperlinks between them. Power iteration with L2
/// normalization converges to the principal singular vectors of the visit
/// matrix; the landmark hub score, normalized to [0, 1] by its maximum, is
/// the significance l.s used by the partition potential.
class SignificanceModel {
 public:
  /// `num_landmarks` fixes the landmark score vector size; `num_travelers`
  /// is an initial capacity — AddVisit grows the traveller set on demand.
  SignificanceModel(size_t num_travelers, size_t num_landmarks);

  /// Records one visit (check-in) of `traveler` at `landmark`. Repeat visits
  /// accumulate weight; traveller ids beyond the current count grow the set.
  void AddVisit(int64_t traveler, LandmarkId landmark);

  /// Runs `iterations` of HITS power iteration and returns the landmark
  /// significance vector (max-normalized to [0, 1]). Landmarks with no
  /// visits get 0.
  std::vector<double> Compute(int iterations = 40) const;

  /// Convenience: Compute() and install the scores into `index`.
  void Apply(LandmarkIndex* index, int iterations = 40) const;

  size_t num_travelers() const { return visits_by_traveler_.size(); }
  size_t num_landmarks() const { return num_landmarks_; }

 private:
  size_t num_landmarks_;
  /// Sparse visit multigraph: (traveler, landmark, count).
  std::vector<std::vector<std::pair<int64_t, double>>> visits_by_traveler_;
};

}  // namespace stmaker

#endif  // STMAKER_LANDMARK_SIGNIFICANCE_H_
