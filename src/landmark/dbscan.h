#ifndef STMAKER_LANDMARK_DBSCAN_H_
#define STMAKER_LANDMARK_DBSCAN_H_

/// \file
/// Density-based clustering of planar points (DBSCAN).

#include <vector>

#include "geo/vec2.h"

namespace stmaker {

/// DBSCAN parameters (Ester et al., KDD'96 [12]).
struct DbscanOptions {
  double eps_m = 100.0;  ///< Neighborhood radius.
  int min_pts = 3;       ///< Minimum neighborhood size (incl. the point) for
                         ///< a core point.
};

/// Result of clustering: labels[i] is the cluster of points[i], or
/// kDbscanNoise for noise points. Cluster ids are dense, starting at 0.
struct DbscanResult {
  std::vector<int> labels;
  int num_clusters = 0;
};

inline constexpr int kDbscanNoise = -1;

/// \brief Density-based clustering of planar points.
///
/// Used to collapse the raw POI dataset into landmark-level clusters, the
/// way the paper reduces 510k raw POIs to ~17k DBSCAN cluster centroids.
/// Runs in O(n · neighborhood) using a grid index for region queries.
DbscanResult Dbscan(const std::vector<Vec2>& points,
                    const DbscanOptions& options);

/// Geometric centroids of each cluster (noise excluded), indexed by cluster
/// id.
std::vector<Vec2> ClusterCentroids(const std::vector<Vec2>& points,
                                   const DbscanResult& result);

}  // namespace stmaker

#endif  // STMAKER_LANDMARK_DBSCAN_H_
