#ifndef STMAKER_LANDMARK_LANDMARK_INDEX_H_
#define STMAKER_LANDMARK_LANDMARK_INDEX_H_

/// \file
/// The landmark dataset with spatial radius queries (Sec. VII-A).

#include <memory>
#include <vector>

#include "common/status.h"
#include "geo/grid_index.h"
#include "landmark/dbscan.h"
#include "landmark/landmark.h"
#include "landmark/poi_generator.h"
#include "roadnet/road_network.h"

namespace stmaker {

/// Options for assembling the landmark dataset.
struct LandmarkIndexOptions {
  DbscanOptions dbscan;          ///< POI clustering parameters.
  double index_cell_m = 250.0;   ///< Spatial index pitch.
};

/// \brief The landmark dataset (Sec. VII-A): POI cluster centroids plus road
/// network turning points, spatially indexed.
///
/// Mirrors the paper's construction: raw POIs are collapsed with DBSCAN and
/// each cluster centroid becomes one named POI landmark; every turning point
/// of the road network becomes a junction landmark named after the roads
/// that cross there.
class LandmarkIndex {
 public:
  /// Builds the dataset from a network and a raw POI set.
  static LandmarkIndex Build(const RoadNetwork& network,
                             const std::vector<RawPoi>& pois,
                             const LandmarkIndexOptions& options =
                                 LandmarkIndexOptions());

  /// \brief Restores a dataset from already-built landmark records (the
  /// model-container load path): no DBSCAN, no junction naming — the
  /// stored landmarks (including significance) are adopted as-is and the
  /// derived lookup structures (node→landmark map, grid index) are
  /// rebuilt.
  ///
  /// \param landmarks The landmark table, ids dense (landmark i has id i).
  /// \param network_node Parallel array: the network node of each
  /// turning-point landmark, -1 for POI landmarks.
  /// \param num_network_nodes Node-id domain, for the node→landmark map.
  /// \param index_cell_m Grid-index pitch (LandmarkIndexOptions::
  /// index_cell_m of the original build).
  /// \return The restored dataset, or kInvalidArgument naming the
  /// inconsistency.
  static Result<LandmarkIndex> FromParts(std::vector<Landmark> landmarks,
                                         std::vector<NodeId> network_node,
                                         size_t num_network_nodes,
                                         double index_cell_m);

  LandmarkIndex(LandmarkIndex&&) = default;
  LandmarkIndex& operator=(LandmarkIndex&&) = default;
  LandmarkIndex(const LandmarkIndex&) = delete;
  LandmarkIndex& operator=(const LandmarkIndex&) = delete;

  size_t size() const { return landmarks_.size(); }
  const std::vector<Landmark>& landmarks() const { return landmarks_; }
  const Landmark& landmark(LandmarkId id) const;

  /// Landmarks within `radius` meters of `p`.
  std::vector<LandmarkId> WithinRadius(const Vec2& p, double radius) const;

  /// Appends the landmarks within `radius` of `p` to `*out` (same result
  /// set as WithinRadius); lets scan loops reuse one buffer.
  void AppendWithinRadius(const Vec2& p, double radius,
                          std::vector<LandmarkId>* out) const;

  /// Nearest landmark id, or -1 (respecting `max_radius` if >= 0).
  LandmarkId Nearest(const Vec2& p, double max_radius = -1) const;

  /// Installs the significance score (l.s) computed by SignificanceModel.
  void SetSignificance(LandmarkId id, double significance);

  /// For a turning-point landmark, the road-network node it sits on; -1 for
  /// POI landmarks. Used by the trajectory generator to tie routes to
  /// landmarks.
  NodeId network_node(LandmarkId id) const;

  /// The turning-point landmark on network node `node`, or -1.
  LandmarkId LandmarkOfNode(NodeId node) const;

  /// Grid-index pitch this dataset was built with; persisted by the model
  /// container so FromParts can rebuild the identical index.
  double index_cell_m() const { return index_cell_m_; }

 private:
  LandmarkIndex() = default;

  std::vector<Landmark> landmarks_;
  std::vector<NodeId> network_node_;   // parallel to landmarks_.
  std::vector<LandmarkId> node_to_landmark_;  // indexed by NodeId.
  std::unique_ptr<GridIndex> index_;
  double index_cell_m_ = 250.0;
};

}  // namespace stmaker

#endif  // STMAKER_LANDMARK_LANDMARK_INDEX_H_
