#include "landmark/dbscan.h"

#include <deque>

#include "common/check.h"
#include "geo/grid_index.h"

namespace stmaker {

DbscanResult Dbscan(const std::vector<Vec2>& points,
                    const DbscanOptions& options) {
  STMAKER_CHECK(options.eps_m > 0);
  STMAKER_CHECK(options.min_pts >= 1);
  const size_t n = points.size();
  DbscanResult out;
  out.labels.assign(n, kDbscanNoise);
  if (n == 0) return out;

  GridIndex index(options.eps_m);
  for (size_t i = 0; i < n; ++i) {
    index.Insert(static_cast<int64_t>(i), points[i]);
  }

  constexpr int kUnvisited = -2;
  std::vector<int> label(n, kUnvisited);

  int next_cluster = 0;
  for (size_t i = 0; i < n; ++i) {
    if (label[i] != kUnvisited) continue;
    std::vector<int64_t> neighbors = index.WithinRadius(points[i],
                                                        options.eps_m);
    if (static_cast<int>(neighbors.size()) < options.min_pts) {
      label[i] = kDbscanNoise;
      continue;
    }
    int cluster = next_cluster++;
    label[i] = cluster;
    std::deque<int64_t> frontier(neighbors.begin(), neighbors.end());
    while (!frontier.empty()) {
      size_t q = static_cast<size_t>(frontier.front());
      frontier.pop_front();
      if (label[q] == kDbscanNoise) label[q] = cluster;  // border point
      if (label[q] != kUnvisited) continue;
      label[q] = cluster;
      std::vector<int64_t> q_neighbors =
          index.WithinRadius(points[q], options.eps_m);
      if (static_cast<int>(q_neighbors.size()) >= options.min_pts) {
        for (int64_t nb : q_neighbors) frontier.push_back(nb);
      }
    }
  }

  out.labels.assign(label.begin(), label.end());
  out.num_clusters = next_cluster;
  return out;
}

std::vector<Vec2> ClusterCentroids(const std::vector<Vec2>& points,
                                   const DbscanResult& result) {
  STMAKER_CHECK(points.size() == result.labels.size());
  std::vector<Vec2> sums(result.num_clusters, Vec2{0, 0});
  std::vector<size_t> counts(result.num_clusters, 0);
  for (size_t i = 0; i < points.size(); ++i) {
    int c = result.labels[i];
    if (c == kDbscanNoise) continue;
    sums[c] = sums[c] + points[i];
    counts[c]++;
  }
  std::vector<Vec2> centroids(result.num_clusters);
  for (int c = 0; c < result.num_clusters; ++c) {
    STMAKER_CHECK(counts[c] > 0);
    centroids[c] = sums[c] * (1.0 / static_cast<double>(counts[c]));
  }
  return centroids;
}

}  // namespace stmaker
