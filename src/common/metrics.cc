#include "common/metrics.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/check.h"
#include "common/strings.h"

namespace stmaker {

namespace {

/// Shard selection must agree for every spelling of the same name, so hash
/// the bytes (FNV-1a) rather than rely on std::hash<string_view> quirks.
size_t NameHash(std::string_view name) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : name) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(h);
}

/// Shortest %.17g-style representation that round-trips doubles without
/// printing "1e+02" for small integral values the tests want readable.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

// --- HistogramSnapshot ------------------------------------------------------

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Target rank in [1, count]; walk buckets until the cumulative count
  // reaches it.
  const double rank = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) < rank) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // Overflow bucket: no upper edge to interpolate toward.
      return bounds.empty() ? 0.0 : bounds.back();
    }
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double hi = bounds[i];
    const double into = rank - static_cast<double>(cumulative);
    return lo + (hi - lo) * (into / static_cast<double>(in_bucket));
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

// --- Histogram --------------------------------------------------------------

std::vector<double> Histogram::DefaultLatencyBoundsMs() {
  // Sub-10 µs resolution first: several pipeline stages (partition, select)
  // complete in single-digit microseconds, and with a 10 µs first bucket
  // every such observation collapsed into it — the interpolated p50 then
  // exceeded the true mean (a pure bucketing artifact, visible in the bench
  // report). 0.5 µs lower edge keeps the finite range tight.
  std::vector<double> bounds = {0.0005, 0.001, 0.002, 0.005};
  bounds.reserve(24);
  double b = 0.01;  // 10 µs
  for (int i = 0; i < 20; ++i) {
    bounds.push_back(b);
    b *= 2;  // ..., 5242.88 ms
  }
  return bounds;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  STMAKER_CHECK(!bounds_.empty());
  STMAKER_CHECK(bounds_.size() <= kMaxBuckets);
  for (size_t i = 1; i < bounds_.size(); ++i) {
    STMAKER_CHECK(bounds_[i] > bounds_[i - 1]);
  }
}

void Histogram::Observe(double value) {
  // First bucket whose upper bound admits the value; the implicit last
  // bucket is the overflow.
  const size_t bucket =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin();
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // fetch_add on atomic<double> is a CAS loop on most targets — still
  // lock-free, and the histogram is not on any per-iteration hot path
  // (one Observe per pipeline stage per request).
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.counts.reserve(counts_.size());
  for (const std::atomic<uint64_t>& c : counts_) {
    snap.counts.push_back(c.load(std::memory_order_relaxed));
  }
  // Derive the total from the copied buckets so count and counts always
  // agree inside one snapshot even when observations race the copy.
  snap.count = 0;
  for (uint64_t c : snap.counts) snap.count += c;
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

// --- MetricsSnapshot --------------------------------------------------------

uint64_t MetricsSnapshot::counter(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += StrFormat("%s\"%s\": %llu", i == 0 ? "" : ", ",
                     counters[i].first.c_str(),
                     static_cast<unsigned long long>(counters[i].second));
  }
  out += "}, \"gauges\": {";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += StrFormat("%s\"%s\": %lld", i == 0 ? "" : ", ",
                     gauges[i].first.c_str(),
                     static_cast<long long>(gauges[i].second));
  }
  out += "}, \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramSnapshot& h = histograms[i].second;
    out += StrFormat(
        "%s\"%s\": {\"count\": %llu, \"sum\": %s, \"mean\": %s, "
        "\"p50\": %s, \"p95\": %s, \"p99\": %s}",
        i == 0 ? "" : ", ", histograms[i].first.c_str(),
        static_cast<unsigned long long>(h.count), FormatDouble(h.sum).c_str(),
        FormatDouble(h.mean()).c_str(), FormatDouble(h.p50()).c_str(),
        FormatDouble(h.p95()).c_str(), FormatDouble(h.p99()).c_str());
  }
  out += "}}";
  return out;
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry::Shard& MetricsRegistry::ShardFor(std::string_view name) {
  return shards_[NameHash(name) % kNumShards];
}

const MetricsRegistry::Shard& MetricsRegistry::ShardFor(
    std::string_view name) const {
  return shards_[NameHash(name) % kNumShards];
}

MetricsRegistry::Entry& MetricsRegistry::GetOrCreate(std::string_view name,
                                                     Kind kind) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(name);
  if (it != shard.entries.end()) {
    // Re-registering under a different kind is a naming bug, not a
    // recoverable condition.
    STMAKER_CHECK(it->second.kind == kind);
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      break;  // installed by the histogram() overloads
  }
  return shard.entries.emplace(std::string(name), std::move(entry))
      .first->second;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *GetOrCreate(name, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *GetOrCreate(name, Kind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  return histogram(name, Histogram::DefaultLatencyBoundsMs());
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  Shard& shard = ShardFor(name);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(name);
  if (it != shard.entries.end()) {
    STMAKER_CHECK(it->second.kind == Kind::kHistogram);
    STMAKER_CHECK(it->second.histogram->bounds() == bounds);
    return *it->second.histogram;
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *shard.entries.emplace(std::string(name), std::move(entry))
              .first->second.histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, entry] : shard.entries) {
      switch (entry.kind) {
        case Kind::kCounter:
          snap.counters.emplace_back(name, entry.counter->value());
          break;
        case Kind::kGauge:
          snap.gauges.emplace_back(name, entry.gauge->value());
          break;
        case Kind::kHistogram:
          snap.histograms.emplace_back(name, entry.histogram->Snapshot());
          break;
      }
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

// --- ScopedLatencyTimer -----------------------------------------------------

namespace {
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ScopedLatencyTimer::ScopedLatencyTimer(Histogram* hist) : hist_(hist) {
  if (hist_ != nullptr) start_ns_ = NowNs();
}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (hist_ == nullptr) return;
  hist_->Observe(static_cast<double>(NowNs() - start_ns_) / 1e6);
}

}  // namespace stmaker
