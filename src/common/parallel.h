#ifndef STMAKER_COMMON_PARALLEL_H_
#define STMAKER_COMMON_PARALLEL_H_

/// \file
/// Thread pool with bounded admission, deterministic parallel-for, and
/// thread-count resolution.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace stmaker {

/// Resolves a requested worker count: values >= 1 pass through; 0 (and
/// negatives) select the hardware concurrency, never less than 1.
int ResolveThreadCount(int requested);

/// \brief A small fixed-size pool of worker threads with a drain barrier.
///
/// Tasks submitted with Submit() run on the workers in FIFO submission
/// order (each worker pulls the oldest pending task); Wait() blocks the
/// caller until every submitted task has finished. The pool is the
/// substrate for ParallelFor/ParallelMap below — most code should use
/// those helpers rather than the pool directly.
///
/// Thread-safety: Submit() and Wait() may be called from any thread, but
/// tasks must not Submit() to the pool they run on while the owner is in
/// Wait() (the drain barrier would count the nested task late). Task
/// exceptions are not caught: the library is exception-free by convention
/// (Status/Result), so a throwing task is a programming error and
/// std::terminate is acceptable.
class ThreadPool {
 public:
  /// Spawns workers for `num_threads` (resolved via ResolveThreadCount),
  /// capped at the hardware concurrency: the pool only ever runs CPU-bound
  /// tasks, so oversubscribing cores cannot add throughput and only
  /// inflates per-task latency tails. `num_threads()` reports the actual
  /// (possibly capped) worker count.
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task.
  void Submit(std::function<void()> task);

  /// Bounded-admission enqueue: accepts only while fewer than
  /// `max_inflight` tasks are queued or executing, else returns false
  /// without taking the task. This is the load-shedding primitive behind
  /// serve mode's --max_inflight: a request that cannot be admitted is
  /// rejected immediately (kResourceExhausted) instead of queueing without
  /// bound. Admission/rejection totals are tracked (admitted()/rejected()).
  bool TrySubmit(std::function<void()> task, size_t max_inflight);

  /// Tasks accepted / rejected by TrySubmit since construction (Submit()
  /// counts as admitted). Thread-safe.
  size_t admitted() const;
  size_t rejected() const;

  /// Blocks until the queue is empty and every in-flight task returned.
  void Wait();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable drained_;
  /// Each task carries its enqueue time so the worker can observe queue
  /// wait (threadpool.queue_wait_ms) on dequeue — no extra allocation.
  std::deque<std::pair<std::function<void()>,
                       std::chrono::steady_clock::time_point>>
      queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  size_t admitted_ = 0;
  size_t rejected_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// \brief Deterministic parallel loop over [0, n).
///
/// The index range is split into at most `threads` contiguous blocks (block
/// s covers indices [s*ceil(n/threads), ...)) and `fn(begin, end, shard)`
/// runs once per non-empty block. Work assignment depends only on (n,
/// threads) — never on scheduling — so a caller that writes results by
/// index or merges per-shard state in shard order gets output identical to
/// the serial loop. With threads <= 1 (or n <= 1) `fn` runs inline on the
/// caller's thread with no pool.
///
/// `fn` must be safe to call concurrently from different threads for
/// disjoint blocks.
void ParallelFor(size_t n, int threads,
                 const std::function<void(size_t begin, size_t end,
                                          int shard)>& fn);

/// Same, scheduling the blocks on an existing pool (one block per pool
/// thread at most). Blocks until all shards complete.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t begin, size_t end,
                                          int shard)>& fn);

/// \brief Deterministic parallel map: out[i] = fn(i) for i in [0, n).
///
/// Results land in index order regardless of which worker computed them,
/// so the output equals the serial `for` loop element-for-element. T must
/// be default-constructible and move-assignable; fn must be safe to call
/// concurrently for distinct indices.
template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t n, int threads, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(n, threads, [&](size_t begin, size_t end, int /*shard*/) {
    for (size_t i = begin; i < end; ++i) out[i] = fn(i);
  });
  return out;
}

}  // namespace stmaker

#endif  // STMAKER_COMMON_PARALLEL_H_
