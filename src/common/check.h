#ifndef STMAKER_COMMON_CHECK_H_
#define STMAKER_COMMON_CHECK_H_

/// \file
/// Assertion macros (STMAKER_CHECK, STMAKER_DCHECK) that abort on violated
/// internal invariants — programmer errors, never data errors.

#include <cstdio>
#include <cstdlib>

namespace stmaker::internal_check {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace stmaker::internal_check

/// \brief Aborts on programmer error (violated internal invariants).
/// Recoverable conditions — bad user input, missing data — must use Status
/// instead; CHECK is for bugs.
#define STMAKER_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::stmaker::internal_check::CheckFail(__FILE__, __LINE__, #expr);   \
    }                                                                    \
  } while (0)

/// Debug-only CHECK: fatal in debug builds, compiled out entirely under
/// NDEBUG (release). The expression is still type-checked but never
/// evaluated, so it must be side-effect free.
#ifdef NDEBUG
#define STMAKER_DCHECK(expr)         \
  do {                               \
    if (false && (expr)) {           \
      /* never evaluated */          \
    }                                \
  } while (0)
#else
#define STMAKER_DCHECK(expr) STMAKER_CHECK(expr)
#endif

#endif  // STMAKER_COMMON_CHECK_H_
