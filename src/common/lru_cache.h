#ifndef STMAKER_COMMON_LRU_CACHE_H_
#define STMAKER_COMMON_LRU_CACHE_H_

/// \file
/// Bounded LRU cache template and its CacheStats effectiveness counters.

#include <cstddef>
#include <cstdio>
#include <functional>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/check.h"

namespace stmaker {

/// \brief Effectiveness counters for one cache: lookups that hit, lookups
/// that missed, and entries evicted to make room. Monotonic over the
/// cache's lifetime (Clear() drops entries, not counters).
struct CacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;

  size_t lookups() const { return hits + misses; }
  double HitRate() const {
    return lookups() == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(lookups());
  }

  /// "1234 hits / 56 misses (95.7% hit rate), 7 evictions" — the line
  /// serve mode prints per cache on shutdown.
  std::string ToString() const {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "%zu hits / %zu misses (%.1f%% hit rate), %zu evictions",
                  hits, misses, HitRate() * 100.0, evictions);
    return buf;
  }
};

/// \brief A bounded least-recently-used cache.
///
/// Capacity is fixed at construction; inserting past capacity evicts the
/// least recently touched entry. Both Get() and Put() count as a touch.
/// Keys need operator== and a Hash functor (std::hash by default).
///
/// Not internally synchronized: callers that share a cache across threads
/// must hold their own mutex around every call (see CachingRouter and the
/// PopularRouteMiner query cache for the locking idiom). Since caches only
/// memoize deterministic computations, their presence never changes
/// results — only latency.
template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    STMAKER_CHECK(capacity > 0);
  }

  size_t size() const { return index_.size(); }
  size_t capacity() const { return capacity_; }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t evictions() const { return evictions_; }

  /// Snapshot of the hit/miss/eviction counters.
  CacheStats stats() const { return CacheStats{hits_, misses_, evictions_}; }

  /// Pointer to the cached value (valid until the next non-const call), or
  /// nullptr on miss. A hit refreshes the entry's recency.
  const Value* Get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites; refreshes recency; evicts the LRU entry when
  /// over capacity.
  void Put(const Key& key, Value value) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
    if (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
  }

  /// Drops every entry (hit/miss counters persist).
  void Clear() {
    index_.clear();
    order_.clear();
  }

 private:
  size_t capacity_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
  std::list<std::pair<Key, Value>> order_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      index_;
};

}  // namespace stmaker

#endif  // STMAKER_COMMON_LRU_CACHE_H_
