#ifndef STMAKER_COMMON_ARENA_H_
#define STMAKER_COMMON_ARENA_H_

/// \file
/// \brief Bump allocator for per-request scratch memory (DESIGN.md §13).
///
/// The serving hot path (map matching, calibration resampling, feature
/// extraction) used to allocate dozens of short-lived vectors, sets, and
/// maps per request; the malloc/free churn showed up directly as p99
/// spikes in `stmaker.stage.extract_ms` and `stmaker.stage.calibrate_ms`.
/// An Arena replaces that churn with pointer bumps into reusable blocks:
///
///   - Allocate() is a bump of the current block's cursor; a new block is
///     chained only when the current one is full. Nothing is ever freed
///     per-object — Deallocate is a no-op.
///   - ArenaScope captures the cursor on entry and rewinds it on exit, so
///     nested scopes (extract → match) release memory LIFO and a request
///     leaves the arena exactly as it found it. Blocks are retained for
///     the next request, so steady-state serving performs no allocation.
///   - Arena::ThreadLocal() hands each thread its own arena; scratch never
///     crosses threads, so there is no locking and no false sharing.
///
/// Rules:
///   - Arena memory must never escape the enclosing ArenaScope; anything
///     returned to a caller is copied into normal heap containers first.
///   - Arena-backed containers must be destroyed (or simply abandoned —
///     trivially-destructible contents only) before the scope rewinds.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace stmaker {

/// \brief A growable bump allocator. Not thread-safe; use one per thread
/// (see ThreadLocal()).
class Arena {
 public:
  /// \param block_bytes Size of each chained block; the first request
  /// rounds odd sizes up to at least kMinBlockBytes.
  explicit Arena(size_t block_bytes = kDefaultBlockBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Returns `bytes` of storage aligned to `align` (a power of two).
  /// Never returns nullptr; chains a new block when the current one is
  /// full (oversized requests get a dedicated block).
  void* Allocate(size_t bytes, size_t align);

  /// Rewinds the arena to completely empty, keeping the blocks for reuse.
  void Reset();

  /// Bytes currently handed out (high-water mark within this scope chain).
  size_t bytes_in_use() const { return bytes_in_use_; }

  /// Total capacity of all chained blocks.
  size_t bytes_reserved() const { return bytes_reserved_; }

  /// The calling thread's scratch arena. Each thread gets its own lazily;
  /// it lives until thread exit. Pair every use with an ArenaScope so the
  /// memory is reclaimed when the request finishes.
  static Arena& ThreadLocal();

  static constexpr size_t kDefaultBlockBytes = 64 * 1024;
  static constexpr size_t kMinBlockBytes = 1024;

 private:
  friend class ArenaScope;

  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
    size_t used = 0;
  };

  /// Opaque rewind point: (block index, offset within it, bytes in use).
  struct Mark {
    size_t block;
    size_t used;
    size_t in_use;
  };

  Mark Position() const;
  void Rewind(const Mark& mark);

  size_t block_bytes_;
  size_t current_ = 0;  ///< Index of the block being bumped.
  size_t bytes_in_use_ = 0;
  size_t bytes_reserved_ = 0;
  std::vector<Block> blocks_;
};

/// \brief RAII rewind point: everything allocated from `arena` after
/// construction is released (LIFO) at scope exit. Scopes nest freely.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena)
      : arena_(&arena), mark_(arena.Position()) {}
  ~ArenaScope() { arena_->Rewind(mark_); }

  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  Arena& arena() const { return *arena_; }

 private:
  Arena* arena_;
  Arena::Mark mark_;
};

/// \brief STL-compatible allocator over an Arena. deallocate() is a no-op;
/// memory is reclaimed only when the enclosing ArenaScope rewinds.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, size_t) {}  // reclaimed by ArenaScope rewind

  Arena* arena() const { return arena_; }

  bool operator==(const ArenaAllocator& other) const {
    return arena_ == other.arena_;
  }
  bool operator!=(const ArenaAllocator& other) const {
    return arena_ != other.arena_;
  }

 private:
  Arena* arena_;
};

/// Scratch vector whose backing store lives in an arena.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace stmaker

#endif  // STMAKER_COMMON_ARENA_H_
