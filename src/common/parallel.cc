#include "common/parallel.h"

#include <algorithm>

#include "common/check.h"
#include "common/metrics.h"

namespace stmaker {

namespace {

/// Pool-wide operational metrics, shared across every ThreadPool in the
/// process (serve mode runs exactly one long-lived pool; the ephemeral
/// ParallelFor pools contribute the training-side picture).
struct PoolMetrics {
  Counter& admitted;
  Counter& rejected;
  Gauge& queue_depth;  ///< queued + executing, last writer wins
  Histogram& queue_wait_ms;

  static PoolMetrics& Get() {
    static PoolMetrics* m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return new PoolMetrics{r.counter("threadpool.admitted"),
                             r.counter("threadpool.rejected"),
                             r.gauge("threadpool.queue_depth"),
                             r.histogram("threadpool.queue_wait_ms")};
    }();
    return *m;
  }
};

}  // namespace

int ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

/// Caps a resolved worker count at the core count. Every task this library
/// runs is CPU-bound, so workers beyond the cores cannot add throughput —
/// they only time-slice against each other, which shows up directly as
/// queue-wait and multi-ms per-item latency tails (threadpool.queue_wait_ms
/// p99 reached ~40 ms on a 1-core host before this cap). Output is
/// unaffected: shard assignment is deterministic in the worker count and
/// results are certified byte-identical at every thread count, so running
/// narrower is always safe. An unknown core count (hw == 0) leaves the
/// request alone.
int CapAtHardware(int resolved) {
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) return resolved;
  return std::min(resolved, static_cast<int>(hw));
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int n = CapAtHardware(ResolveThreadCount(num_threads));
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stopping_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  STMAKER_CHECK(task != nullptr);
  PoolMetrics& metrics = PoolMetrics::Get();
  {
    std::unique_lock<std::mutex> lock(mu_);
    STMAKER_CHECK(!stopping_);
    queue_.emplace_back(std::move(task), std::chrono::steady_clock::now());
    ++in_flight_;
    ++admitted_;
    metrics.queue_depth.Set(static_cast<int64_t>(in_flight_));
  }
  metrics.admitted.Increment();
  task_ready_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task, size_t max_inflight) {
  STMAKER_CHECK(task != nullptr);
  PoolMetrics& metrics = PoolMetrics::Get();
  {
    std::unique_lock<std::mutex> lock(mu_);
    STMAKER_CHECK(!stopping_);
    if (in_flight_ >= max_inflight) {
      ++rejected_;
      // A rejection is otherwise invisible beyond the caller's false
      // return — the counter is what overload dashboards watch.
      metrics.rejected.Increment();
      return false;
    }
    queue_.emplace_back(std::move(task), std::chrono::steady_clock::now());
    ++in_flight_;
    ++admitted_;
    metrics.queue_depth.Set(static_cast<int64_t>(in_flight_));
  }
  metrics.admitted.Increment();
  task_ready_.notify_one();
  return true;
}

size_t ThreadPool::admitted() const {
  std::unique_lock<std::mutex> lock(mu_);
  return admitted_;
}

size_t ThreadPool::rejected() const {
  std::unique_lock<std::mutex> lock(mu_);
  return rejected_;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    std::function<void()> task;
    std::chrono::steady_clock::time_point enqueued;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front().first);
      enqueued = queue_.front().second;
      queue_.pop_front();
    }
    metrics.queue_wait_ms.Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - enqueued)
            .count());
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      metrics.queue_depth.Set(static_cast<int64_t>(in_flight_));
      if (in_flight_ == 0) drained_.notify_all();
    }
  }
}

namespace {

/// Contiguous block bounds for shard `s` of `n` items over `shards` shards.
std::pair<size_t, size_t> ShardBounds(size_t n, int shards, int s) {
  size_t block = (n + static_cast<size_t>(shards) - 1) /
                 static_cast<size_t>(shards);
  size_t begin = std::min(n, block * static_cast<size_t>(s));
  size_t end = std::min(n, begin + block);
  return {begin, end};
}

}  // namespace

void ParallelFor(size_t n, int threads,
                 const std::function<void(size_t, size_t, int)>& fn) {
  // Cap here as well as in the pool: when the cap lands on one worker the
  // loop runs inline, skipping pool construction and queueing entirely.
  threads = CapAtHardware(ResolveThreadCount(threads));
  if (threads <= 1 || n <= 1) {
    if (n > 0) fn(0, n, 0);
    return;
  }
  ThreadPool pool(threads);
  ParallelFor(&pool, n, fn);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t, size_t, int)>& fn) {
  STMAKER_CHECK(pool != nullptr);
  const int shards = std::min<int>(pool->num_threads(),
                                   static_cast<int>(std::max<size_t>(n, 1)));
  if (shards <= 1) {
    if (n > 0) fn(0, n, 0);
    return;
  }
  for (int s = 0; s < shards; ++s) {
    auto [begin, end] = ShardBounds(n, shards, s);
    if (begin >= end) continue;
    pool->Submit([&fn, begin = begin, end = end, s] { fn(begin, end, s); });
  }
  pool->Wait();
}

}  // namespace stmaker
