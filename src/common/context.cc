#include "common/context.h"

#include <limits>

namespace stmaker {

double RequestContext::RemainingMs() const {
  if (!has_deadline()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double, std::milli>(deadline - Clock::now())
      .count();
}

Status RequestContext::Check() const {
  if (cancel.cancelled()) {
    return Status::Cancelled("request cancelled");
  }
  if (expired()) {
    return Status::DeadlineExceeded("request deadline exceeded");
  }
  return Status::OK();
}

}  // namespace stmaker
