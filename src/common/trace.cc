#include "common/trace.h"

#include <algorithm>
#include <cstddef>

#include "common/strings.h"

namespace stmaker {

namespace {

/// Innermost live span on this thread, for parent inference. Per-thread,
/// so concurrent requests (each with its own Trace) never see each other:
/// ScopedSpan only links to the enclosing span when it belongs to the
/// same Trace.
thread_local ScopedSpan* t_current_span = nullptr;

struct SpanFrame {
  const TraceEvent* event;
  std::vector<const SpanFrame*> children;
};

void AppendSpanJson(const SpanFrame& frame, std::string* out) {
  const TraceEvent& e = *frame.event;
  *out += StrFormat("{\"name\": \"%s\", \"start_ms\": %.3f, \"end_ms\": "
                    "%.3f, \"duration_ms\": %.3f, \"children\": [",
                    e.name.c_str(), e.start_ms, e.end_ms, e.duration_ms());
  for (size_t i = 0; i < frame.children.size(); ++i) {
    if (i > 0) *out += ", ";
    AppendSpanJson(*frame.children[i], out);
  }
  *out += "]}";
}

}  // namespace

Trace::Trace() : epoch_(Clock::now()) {}

void Trace::Record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Trace::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::string Trace::ToJson() const {
  const std::vector<TraceEvent> events = Events();
  // Build the tree: id -> frame, then hang children off parents. Ids are
  // dense-ish but not contiguous (they count up from 1), so index frames
  // by position and map ids.
  std::vector<SpanFrame> frames(events.size());
  for (size_t i = 0; i < events.size(); ++i) frames[i].event = &events[i];
  std::vector<SpanFrame*> roots;
  for (size_t i = 0; i < events.size(); ++i) {
    const uint64_t parent = events[i].parent;
    SpanFrame* parent_frame = nullptr;
    if (parent != 0) {
      for (size_t j = 0; j < events.size(); ++j) {
        if (events[j].id == parent) {
          parent_frame = &frames[j];
          break;
        }
      }
    }
    if (parent_frame != nullptr) {
      parent_frame->children.push_back(&frames[i]);
    } else {
      roots.push_back(&frames[i]);
    }
  }
  auto by_start = [](const SpanFrame* a, const SpanFrame* b) {
    if (a->event->start_ms != b->event->start_ms) {
      return a->event->start_ms < b->event->start_ms;
    }
    return a->event->id < b->event->id;
  };
  std::sort(roots.begin(), roots.end(), by_start);
  for (SpanFrame& frame : frames) {
    std::sort(frame.children.begin(), frame.children.end(), by_start);
  }

  std::string out = "{\"spans\": [";
  for (size_t i = 0; i < roots.size(); ++i) {
    if (i > 0) out += ", ";
    AppendSpanJson(*roots[i], &out);
  }
  out += "]}";
  return out;
}

std::string Trace::ToNdjson() const {
  std::string out;
  for (const TraceEvent& e : Events()) {
    out += StrFormat("{\"id\": %llu, \"parent\": %llu, \"name\": \"%s\", "
                     "\"start_ms\": %.3f, \"end_ms\": %.3f}\n",
                     static_cast<unsigned long long>(e.id),
                     static_cast<unsigned long long>(e.parent),
                     e.name.c_str(), e.start_ms, e.end_ms);
  }
  return out;
}

ScopedSpan::ScopedSpan(Trace* trace, const char* name, Histogram* hist)
    : trace_(trace), name_(name), hist_(hist) {
  if (trace_ == nullptr && hist_ == nullptr) return;  // disabled fast path
  start_ = Trace::Clock::now();
  if (trace_ == nullptr) return;  // histogram-only timing, no span bookkeeping
  id_ = trace_->NextId();
  // Parent = the innermost live span of the same trace on this thread.
  // Spans of a different trace (a nested unrelated request on one thread)
  // are skipped, not adopted — walk outward until this trace reappears.
  for (ScopedSpan* s = t_current_span; s != nullptr; s = s->prev_) {
    if (s->trace_ == trace_) {
      parent_ = s->id_;
      break;
    }
  }
  prev_ = t_current_span;
  t_current_span = this;
}

ScopedSpan::~ScopedSpan() {
  if (trace_ == nullptr && hist_ == nullptr) return;
  const Trace::Clock::time_point end = Trace::Clock::now();
  if (hist_ != nullptr) {
    hist_->Observe(
        std::chrono::duration<double, std::milli>(end - start_).count());
  }
  if (trace_ == nullptr) return;
  t_current_span = prev_;
  TraceEvent event;
  event.id = id_;
  event.parent = parent_;
  event.name = name_;
  event.start_ms = trace_->SinceEpochMs(start_);
  event.end_ms = trace_->SinceEpochMs(end);
  trace_->Record(std::move(event));
}

}  // namespace stmaker
