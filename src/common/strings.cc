#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cmath>

namespace stmaker {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= input.size(); ++i) {
    if (i == input.size() || input[i] == delim) {
      out.emplace_back(input.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatNumber(double value, int digits) {
  if (digits < 0) digits = 0;
  std::string s = StrFormat("%.*f", digits, value);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  if (s == "-0") s = "0";
  return s;
}

std::string FormatDuration(double seconds) {
  if (seconds < 0) seconds = 0;
  long total = std::lround(seconds);
  if (total < 120) {
    return StrFormat("%ld second%s", total, total == 1 ? "" : "s");
  }
  long minutes = total / 60;
  if (minutes < 60) {
    return StrFormat("%ld minutes", minutes);
  }
  long hours = minutes / 60;
  minutes %= 60;
  std::string out = StrFormat("%ld hour%s", hours, hours == 1 ? "" : "s");
  if (minutes > 0) out += StrFormat(" %ld minutes", minutes);
  return out;
}

}  // namespace stmaker
