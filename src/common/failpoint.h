#ifndef STMAKER_COMMON_FAILPOINT_H_
#define STMAKER_COMMON_FAILPOINT_H_

#include <cstddef>
#include <string>

#include "common/status.h"

/// \file
/// \brief Deterministic fault injection for robustness testing.
///
/// A failpoint is a named hook compiled into an error-prone code path (file
/// I/O, the sharded ingestion loop). When the library is built with
/// -DSTMAKER_FAILPOINTS=ON (CMake option, which defines
/// STMAKER_FAILPOINTS_ENABLED=1) an armed failpoint makes the hook execute
/// an injected action — invariably "return an error Status" — so tests can
/// prove that every caller degrades cleanly instead of crashing.
///
/// In a normal build the hook macro expands to nothing: zero code, zero
/// branches, zero cost. The arming API below always exists (so test
/// binaries link in either configuration) and tests gate on
/// FailpointsCompiledIn().
///
/// Failpoints are armed programmatically (ArmFailpoint) or through the
/// environment: STMAKER_FAILPOINTS="io/read;train/shard=2;io/write=1:3"
/// arms `io/read` for every hit, `train/shard` for its first 2 hits, and
/// `io/write` for hits 2..4 (skip 1 passing hit, then fail 3). The
/// environment is read once, on the first hook evaluation; a malformed
/// spec arms nothing and warns on stderr (tests use ArmFailpointsFromSpec
/// to observe the parse error directly).

#ifndef STMAKER_FAILPOINTS_ENABLED
#define STMAKER_FAILPOINTS_ENABLED 0
#endif

namespace stmaker {

/// True when the library was compiled with failpoint hooks
/// (-DSTMAKER_FAILPOINTS=ON). When false, STMAKER_FAILPOINT is a no-op and
/// arming has no observable effect.
bool FailpointsCompiledIn();

/// Arms `name`: after `skip` passing hits, the next `count` hits fail
/// (count < 0 = every subsequent hit). Re-arming resets the hit counter.
/// Thread-safe.
void ArmFailpoint(const std::string& name, int skip = 0, int count = -1);

/// Arms every entry of a semicolon-separated spec — the same grammar the
/// STMAKER_FAILPOINTS environment variable uses:
///
///   entry  := name | name "=" count | name "=" skip ":" count
///   count  := non-negative integer (failing hits)
///   skip   := non-negative integer (passing hits before the first failure)
///
/// A bare `name` fails every hit. Parsing is strict and atomic: on any
/// malformed entry (empty name, missing/garbage/negative numbers) nothing
/// is armed and kInvalidArgument names the offending entry. Thread-safe.
Status ArmFailpointsFromSpec(const std::string& spec);

/// Re-reads STMAKER_FAILPOINTS now, replacing the armed set (disarms
/// everything first; an unset/empty variable just disarms). Returns the
/// parse outcome. Primarily for tests that set the variable after the
/// first hook evaluation already consumed it. Thread-safe.
Status ReloadFailpointsFromEnv();

/// Disarms one failpoint (no-op when not armed). Thread-safe.
void DisarmFailpoint(const std::string& name);

/// Disarms every failpoint, including environment-armed ones. Thread-safe.
void DisarmAllFailpoints();

/// Number of times the named failpoint hook was evaluated since arming
/// (0 when never armed). Thread-safe.
size_t FailpointHitCount(const std::string& name);

/// Hook predicate behind STMAKER_FAILPOINT: counts the hit and reports
/// whether the injected action should run. Loads STMAKER_FAILPOINTS from
/// the environment on first call. Thread-safe; cheap when nothing is armed
/// (one mutex acquisition — and in non-failpoint builds it is never
/// called from library code at all).
bool FailpointShouldFail(const char* name);

}  // namespace stmaker

#if STMAKER_FAILPOINTS_ENABLED
/// Runs `action` (typically `return Status::IoError(...)`) when the named
/// failpoint is armed and fires on this hit.
#define STMAKER_FAILPOINT(name, action)              \
  do {                                               \
    if (::stmaker::FailpointShouldFail(name)) {      \
      action;                                        \
    }                                                \
  } while (0)
#else
#define STMAKER_FAILPOINT(name, action) \
  do {                                  \
  } while (0)
#endif

#endif  // STMAKER_COMMON_FAILPOINT_H_
