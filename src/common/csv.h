#ifndef STMAKER_COMMON_CSV_H_
#define STMAKER_COMMON_CSV_H_

/// \file
/// CSV formatting, parsing, and streaming writers shared by all
/// persistence code.

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace stmaker {

/// Renders one CSV row (trailing newline included). Fields containing
/// commas, quotes, or newlines are quoted per RFC 4180.
std::string FormatCsvRow(const std::vector<std::string>& fields);

/// \brief Minimal CSV writer used to persist generated datasets (trajectory
/// corpora, landmark tables) and benchmark series. Fields containing commas,
/// quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing, truncating any existing file.
  static Result<CsvWriter> Open(const std::string& path);

  CsvWriter(CsvWriter&& other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }
  CsvWriter& operator=(CsvWriter&& other) noexcept {
    if (this != &other) {
      if (file_ != nullptr) std::fclose(file_);
      file_ = other.file_;
      other.file_ = nullptr;
    }
    return *this;
  }
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  ~CsvWriter();

  /// Writes one row; flushes on Close/destruction.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes the file; further writes fail.
  Status Close();

 private:
  explicit CsvWriter(std::FILE* file) : file_(file) {}

  std::FILE* file_;
};

/// \brief In-memory CSV serializer: same quoting as CsvWriter, but the
/// output accumulates in a string. Model persistence builds each file's
/// full content with this so it can be checksummed and written atomically.
class CsvBuilder {
 public:
  void Row(const std::vector<std::string>& fields) {
    text_ += FormatCsvRow(fields);
  }
  const std::string& str() const { return text_; }
  std::string TakeString() { return std::move(text_); }

 private:
  std::string text_;
};

/// Parses CSV text into rows of fields, honoring RFC 4180 quoting.
/// The final newline is optional; empty input yields no rows. Rows may be
/// ragged at this layer; schema-aware callers should use ParseCsvTable /
/// ReadCsvTable, which reject them.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

/// Reads and parses an entire CSV file (failpoints: the ReadFileToString
/// ones).
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

/// \brief Parses CSV `text` as a rectangular table: the first row must
/// equal `expected_header`, and every data row must have exactly the header
/// width — short, long, or ragged rows fail with kInvalidArgument carrying
/// `context` (typically the file path) and the 1-based row number.
/// Returns the data rows (header removed).
Result<std::vector<std::vector<std::string>>> ParseCsvTable(
    const std::string& text, const std::vector<std::string>& expected_header,
    const std::string& context);

/// Reads `path` and parses it with ParseCsvTable (context = path).
Result<std::vector<std::vector<std::string>>> ReadCsvTable(
    const std::string& path,
    const std::vector<std::string>& expected_header);

}  // namespace stmaker

#endif  // STMAKER_COMMON_CSV_H_
