#ifndef STMAKER_COMMON_CSV_H_
#define STMAKER_COMMON_CSV_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"

namespace stmaker {

/// \brief Minimal CSV writer used to persist generated datasets (trajectory
/// corpora, landmark tables) and benchmark series. Fields containing commas,
/// quotes, or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens `path` for writing, truncating any existing file.
  static Result<CsvWriter> Open(const std::string& path);

  CsvWriter(CsvWriter&& other) noexcept : file_(other.file_) {
    other.file_ = nullptr;
  }
  CsvWriter& operator=(CsvWriter&& other) noexcept {
    if (this != &other) {
      if (file_ != nullptr) std::fclose(file_);
      file_ = other.file_;
      other.file_ = nullptr;
    }
    return *this;
  }
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;
  ~CsvWriter();

  /// Writes one row; flushes on Close/destruction.
  Status WriteRow(const std::vector<std::string>& fields);

  /// Flushes and closes the file; further writes fail.
  Status Close();

 private:
  explicit CsvWriter(std::FILE* file) : file_(file) {}

  std::FILE* file_;
};

/// Parses CSV text into rows of fields, honoring RFC 4180 quoting.
/// The final newline is optional; empty input yields no rows.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text);

/// Reads and parses an entire CSV file.
Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path);

}  // namespace stmaker

#endif  // STMAKER_COMMON_CSV_H_
