#ifndef STMAKER_COMMON_RETRY_H_
#define STMAKER_COMMON_RETRY_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>

#include "common/context.h"
#include "common/status.h"

/// \file
/// \brief Jittered exponential backoff around transient failures.
///
/// Retrying is reserved for errors that plausibly heal on their own —
/// today only kIoError (a flaky filesystem read) qualifies; every other
/// category is deterministic and retrying it would just triple the
/// latency of a guaranteed failure. Both the jitter and the sleep are
/// seamed for tests: the jitter comes from the repo's deterministic
/// xoshiro256** Random seeded by RetryOptions::seed, and sleeps can be
/// captured through RetryOptions::sleep_ms, so backoff tests are
/// reproducible bit-for-bit (no wall-clock flakiness).

namespace stmaker {

/// Tuning for RetryWithBackoff. The defaults make three attempts with
/// backoffs of ~5 ms and ~10 ms between them (scaled down by jitter).
struct RetryOptions {
  /// Total attempts including the first; values < 1 behave as 1.
  int max_attempts = 3;

  /// Delay before the first retry; doubled (by `multiplier`) after each
  /// subsequent failure, capped at `max_backoff_ms`.
  double initial_backoff_ms = 5.0;
  double multiplier = 2.0;
  double max_backoff_ms = 100.0;

  /// Each delay is scaled by a uniform draw from [1 - jitter, 1], so
  /// concurrent retriers decorrelate. 0 = no jitter.
  double jitter = 0.5;

  /// Seed for the deterministic jitter stream (per RetryWithBackoff call).
  uint64_t seed = 0x5713aceU;

  /// Test seam: invoked instead of a real sleep when set. The default
  /// (nullptr) sleeps on std::this_thread.
  std::function<void(double ms)> sleep_ms;

  /// Optional request context: no retry is attempted once the deadline
  /// has passed or the request is cancelled, and each backoff sleep is
  /// clamped to the remaining time.
  const RequestContext* context = nullptr;
};

/// True for status categories worth retrying (transient I/O).
inline bool IsRetryableStatus(const Status& status) {
  return status.code() == StatusCode::kIoError;
}

namespace retry_internal {

inline Status GetStatus(const Status& s) { return s; }
template <typename T>
Status GetStatus(const Result<T>& r) {
  return r.status();
}

/// Deterministic delay for 1-based retry number `retry` (the delay taken
/// after the `retry`-th failed attempt). `jitter_draw` is a uniform [0,1)
/// sample.
double BackoffDelayMs(const RetryOptions& options, int retry,
                      double jitter_draw);

/// Sleeps via the seam or the real clock; clamps to the context's
/// remaining time when one is set.
void SleepForMs(const RetryOptions& options, double delay_ms);

/// Next jitter draw for attempt index `retry` from the seeded stream.
/// Kept out-of-line so retry.h does not pull in random.h.
double JitterDraw(uint64_t seed, int retry);

}  // namespace retry_internal

/// \brief Runs `fn` (returning Status or Result<T>) up to
/// `options.max_attempts` times, sleeping with jittered exponential
/// backoff between attempts, and returns the last outcome.
///
/// Only IsRetryableStatus() errors are retried; anything else (including
/// success) returns immediately. When `options.context` is set and
/// expires or is cancelled mid-loop, the context error is returned so
/// callers see why the retry budget was abandoned.
template <typename Fn>
auto RetryWithBackoff(const RetryOptions& options, Fn&& fn)
    -> decltype(fn()) {
  const int attempts = std::max(1, options.max_attempts);
  for (int attempt = 1;; ++attempt) {
    auto outcome = fn();
    Status status = retry_internal::GetStatus(outcome);
    if (status.ok() || !IsRetryableStatus(status) || attempt >= attempts) {
      return outcome;
    }
    Status ctx_status = CheckContext(options.context);
    if (!ctx_status.ok()) return ctx_status;
    double draw = retry_internal::JitterDraw(options.seed, attempt);
    retry_internal::SleepForMs(
        options, retry_internal::BackoffDelayMs(options, attempt, draw));
  }
}

/// ReadFileToString with retry — the standard wrapper for model/file
/// reads on the serving path (exercised by the "io/open-read" /
/// "io/read" failpoints).
Result<std::string> ReadFileToStringWithRetry(const std::string& path,
                                              const RetryOptions& options);

}  // namespace stmaker

#endif  // STMAKER_COMMON_RETRY_H_
