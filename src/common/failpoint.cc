#include "common/failpoint.h"

#include <cstdlib>
#include <mutex>
#include <unordered_map>

#include "common/strings.h"

namespace stmaker {

namespace {

struct FailpointState {
  int skip = 0;    // passing hits before the first failure
  int count = -1;  // failing hits after that; -1 = unbounded
  size_t hits = 0;
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, FailpointState> points;
  bool env_loaded = false;

  // Parses STMAKER_FAILPOINTS="name[=count][;name...]" once. Holding mu.
  void LoadEnvLocked() {
    if (env_loaded) return;
    env_loaded = true;
    const char* env = std::getenv("STMAKER_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    for (const std::string& entry : Split(env, ';')) {
      std::string_view spec = Trim(entry);
      if (spec.empty()) continue;
      FailpointState state;
      size_t eq = spec.find('=');
      std::string name(spec.substr(0, eq));
      if (eq != std::string_view::npos) {
        state.count = std::atoi(std::string(spec.substr(eq + 1)).c_str());
      }
      points[name] = state;
    }
  }
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

bool FailpointsCompiledIn() { return STMAKER_FAILPOINTS_ENABLED != 0; }

void ArmFailpoint(const std::string& name, int skip, int count) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.LoadEnvLocked();
  FailpointState state;
  state.skip = skip;
  state.count = count;
  registry.points[name] = state;
}

void DisarmFailpoint(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.erase(name);
}

void DisarmAllFailpoints() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.clear();
  registry.env_loaded = true;  // do not resurrect env-armed points
}

size_t FailpointHitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

bool FailpointShouldFail(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.LoadEnvLocked();
  if (registry.points.empty()) return false;
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return false;
  FailpointState& state = it->second;
  size_t hit = state.hits++;
  if (hit < static_cast<size_t>(state.skip)) return false;
  if (state.count < 0) return true;
  return hit < static_cast<size_t>(state.skip) +
                   static_cast<size_t>(state.count);
}

}  // namespace stmaker
