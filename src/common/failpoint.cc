#include "common/failpoint.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/strings.h"

namespace stmaker {

namespace {

struct FailpointState {
  int skip = 0;    // passing hits before the first failure
  int count = -1;  // failing hits after that; -1 = unbounded
  size_t hits = 0;
};

/// Strict non-negative integer parse (the whole of `text`, no sign, no
/// trailing garbage).
bool ParseNonNegativeInt(std::string_view text, int* out) {
  if (text.empty() || text.size() > 9) return false;
  int value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  *out = value;
  return true;
}

/// Parses one spec into (name -> state) entries without touching the
/// registry. Returns kInvalidArgument naming the first bad entry.
Status ParseSpec(const std::string& spec,
                 std::vector<std::pair<std::string, FailpointState>>* out) {
  for (const std::string& entry : Split(spec, ';')) {
    std::string_view trimmed = Trim(entry);
    if (trimmed.empty()) continue;
    FailpointState state;
    size_t eq = trimmed.find('=');
    std::string_view name = Trim(trimmed.substr(0, eq));
    if (name.empty()) {
      return Status::InvalidArgument("failpoint spec entry has no name: \"" +
                                     entry + "\"");
    }
    if (eq != std::string_view::npos) {
      std::string_view window = Trim(trimmed.substr(eq + 1));
      size_t colon = window.find(':');
      std::string_view count_text = window;
      if (colon != std::string_view::npos) {
        if (!ParseNonNegativeInt(Trim(window.substr(0, colon)),
                                 &state.skip)) {
          return Status::InvalidArgument(
              "failpoint spec entry has a malformed skip: \"" + entry +
              "\" (want name=skip:count with non-negative integers)");
        }
        count_text = window.substr(colon + 1);
      }
      if (!ParseNonNegativeInt(Trim(count_text), &state.count)) {
        return Status::InvalidArgument(
            "failpoint spec entry has a malformed count: \"" + entry +
            "\" (want name, name=count, or name=skip:count)");
      }
    }
    out->emplace_back(std::string(name), state);
  }
  return Status::OK();
}

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, FailpointState> points;
  bool env_loaded = false;

  // Parses and arms a spec atomically: a malformed spec arms nothing.
  // Holding mu.
  Status ArmSpecLocked(const std::string& spec) {
    std::vector<std::pair<std::string, FailpointState>> parsed;
    STMAKER_RETURN_IF_ERROR(ParseSpec(spec, &parsed));
    for (auto& [name, state] : parsed) points[name] = state;
    return Status::OK();
  }

  // Reads STMAKER_FAILPOINTS once. Holding mu.
  void LoadEnvLocked() {
    if (env_loaded) return;
    env_loaded = true;
    const char* env = std::getenv("STMAKER_FAILPOINTS");
    if (env == nullptr || *env == '\0') return;
    Status status = ArmSpecLocked(env);
    if (!status.ok()) {
      std::fprintf(stderr, "stmaker: ignoring STMAKER_FAILPOINTS: %s\n",
                   status.ToString().c_str());
    }
  }
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

bool FailpointsCompiledIn() { return STMAKER_FAILPOINTS_ENABLED != 0; }

void ArmFailpoint(const std::string& name, int skip, int count) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.LoadEnvLocked();
  FailpointState state;
  state.skip = skip;
  state.count = count;
  registry.points[name] = state;
}

Status ArmFailpointsFromSpec(const std::string& spec) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.LoadEnvLocked();
  return registry.ArmSpecLocked(spec);
}

Status ReloadFailpointsFromEnv() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.clear();
  registry.env_loaded = true;  // this reload is the (re-)read
  const char* env = std::getenv("STMAKER_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::OK();
  return registry.ArmSpecLocked(env);
}

void DisarmFailpoint(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.erase(name);
}

void DisarmAllFailpoints() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.clear();
  registry.env_loaded = true;  // do not resurrect env-armed points
}

size_t FailpointHitCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.hits;
}

bool FailpointShouldFail(const char* name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.LoadEnvLocked();
  if (registry.points.empty()) return false;
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return false;
  FailpointState& state = it->second;
  size_t hit = state.hits++;
  if (hit < static_cast<size_t>(state.skip)) return false;
  if (state.count < 0) return true;
  return hit < static_cast<size_t>(state.skip) +
                   static_cast<size_t>(state.count);
}

}  // namespace stmaker
