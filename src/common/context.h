#ifndef STMAKER_COMMON_CONTEXT_H_
#define STMAKER_COMMON_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/status.h"

/// \file
/// \brief Per-request deadline / cancellation / cost-budget propagation.
///
/// Every serving-path entry point (Summarize, Partition, Calibrate, Match,
/// Route, ...) accepts an optional `const RequestContext*`. A null context
/// means "no limits" — exactly the pre-context behaviour, so library code
/// and tests that do not care about deadlines are unaffected.
///
/// Check-point placement rules (DESIGN.md §10):
///   1. Every entry point taking a context calls ctx->Check() once up
///      front, so an already-expired or already-cancelled request fails
///      deterministically even when the input is tiny.
///   2. Every unbounded or data-proportional loop (Dijkstra expansion,
///      the partition DP rows, calibration's polyline scan, the Viterbi
///      recursion) carries a CancelCheck and calls Tick() per iteration;
///      the clock is consulted every `stride` ticks to amortize its cost.
///   3. A deadline/cancel abort propagates as kDeadlineExceeded /
///      kCancelled — never as a silently truncated result — and such
///      statuses are never memoized in any cache (they describe the
///      request, not the computation).

namespace stmaker {

class Trace;  // common/trace.h

/// \brief Cheap, copyable view of a cancellation flag.
///
/// A default-constructed token can never be cancelled (the common case for
/// code running without a CancelSource); tokens obtained from a
/// CancelSource observe its Cancel() calls from any thread.
class CancelToken {
 public:
  CancelToken() = default;

  /// Thread-safe (one relaxed load).
  /// \return True once the owning CancelSource has been cancelled; always
  /// false for a default-constructed token.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// \brief Owner side of a cancellation flag (e.g. a serve-mode watchdog).
///
/// Cancellation is cooperative and one-way: once Cancel() is called every
/// token stays cancelled forever. Thread-safe.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// \return A token observing this source's flag; copy it into requests.
  CancelToken token() const { return CancelToken(flag_); }
  /// Fires the flag; every outstanding token reads cancelled from now on.
  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  /// \return True once Cancel() has been called.
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// \brief Limits attached to one request: a monotonic-clock deadline, a
/// cooperative cancellation token, and per-call cost budgets.
///
/// Plain value type; copy it freely. The default-constructed context has
/// no deadline, cannot be cancelled, and has unlimited budgets — identical
/// to passing a null context pointer.
struct RequestContext {
  using Clock = std::chrono::steady_clock;

  /// Absolute deadline on the monotonic clock; time_point::max() = none.
  Clock::time_point deadline = Clock::time_point::max();

  /// Cooperative cancellation flag (default: never cancels).
  CancelToken cancel;

  /// Per-Route()-call cap on Dijkstra/A* node expansions; 0 = unlimited.
  /// Applies to roadnet shortest-path searches only (see DESIGN.md §10).
  size_t max_node_expansions = 0;

  /// Optional span collector for this request (common/trace.h); null (the
  /// default) disables tracing — pipeline spans then cost one branch.
  /// The Trace must outlive every call carrying this context. Tracing is
  /// observational only: attaching one never changes any result
  /// (DESIGN.md §11; the golden suite pins byte-identical output).
  Trace* trace = nullptr;

  /// \param timeout Time allowed from now; non-positive values produce an
  /// already-expired deadline (useful in tests).
  /// \return A context whose deadline is `timeout` from now.
  static RequestContext WithDeadline(std::chrono::milliseconds timeout) {
    RequestContext ctx;
    ctx.deadline = Clock::now() + timeout;
    return ctx;
  }

  /// \return True when a finite deadline is set.
  bool has_deadline() const { return deadline != Clock::time_point::max(); }
  /// \return True when a finite deadline is set and has passed.
  bool expired() const { return has_deadline() && Clock::now() >= deadline; }

  /// \return Milliseconds until the deadline (negative once expired);
  /// +infinity when no deadline is set.
  double RemainingMs() const;

  /// Cancellation wins over the deadline because it is the more specific
  /// signal (the watchdog cancels *because* the deadline passed).
  /// \return kCancelled if the token fired, else kDeadlineExceeded if the
  /// deadline passed, else OK.
  Status Check() const;
};

/// The one-liner every entry point uses for its up-front check.
/// \param ctx The request's context; null means "no limits".
/// \return OK for a null context, else ctx->Check().
inline Status CheckContext(const RequestContext* ctx) {
  return ctx == nullptr ? Status::OK() : ctx->Check();
}

/// \param ctx The request's context, possibly null.
/// \return The request's span collector, or null for a null/untraced
/// context — exactly what ScopedSpan's first argument wants.
inline Trace* TraceOf(const RequestContext* ctx) {
  return ctx == nullptr ? nullptr : ctx->trace;
}

/// Results carrying these codes must never be cached: a later identical
/// call with a fresh context could succeed.
/// \param code The status code to classify.
/// \return True for codes that describe the request's limits rather than
/// the computation itself.
inline bool IsContextError(StatusCode code) {
  return code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kCancelled ||
         code == StatusCode::kResourceExhausted;
}

/// \brief Amortized per-iteration context check for hot loops.
///
/// Tick() is one decrement on most calls; every `stride` ticks it consults
/// the cancellation flag and the clock via ctx->Check(). With a null
/// context Tick() always returns OK. Not thread-safe — make one per loop,
/// per thread.
///
/// The stride bounds how late a deadline is noticed: at most `stride`
/// iterations of the enclosing loop after expiry. 256 keeps that latency
/// well under a millisecond for every loop body in this codebase while
/// making the clock read cost unmeasurable.
class CancelCheck {
 public:
  static constexpr uint32_t kDefaultStride = 256;

  /// \param ctx The request's context; null disables all checking.
  /// \param stride Number of Tick() calls between real ctx->Check() calls;
  /// 0 is treated as 1.
  explicit CancelCheck(const RequestContext* ctx,
                       uint32_t stride = kDefaultStride)
      : ctx_(ctx), stride_(stride == 0 ? 1 : stride), countdown_(stride_) {}

  /// Cheap iteration check; see class comment.
  /// \return OK on most calls; the context's error once a check fires.
  Status Tick() {
    if (ctx_ == nullptr) return Status::OK();
    if (--countdown_ > 0) return Status::OK();
    countdown_ = stride_;
    return ctx_->Check();
  }

 private:
  const RequestContext* ctx_;
  uint32_t stride_;
  uint32_t countdown_;
};

}  // namespace stmaker

#endif  // STMAKER_COMMON_CONTEXT_H_
