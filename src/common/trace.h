#ifndef STMAKER_COMMON_TRACE_H_
#define STMAKER_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"

/// \file
/// \brief Lightweight per-request span tracing.
///
/// A Trace collects the finished spans of one request; ScopedSpan is the
/// RAII recorder a pipeline stage opens on entry. Parenthood is inferred
/// from lexical nesting on the recording thread (a thread-local current
/// span), so `ScopedSpan a(...); { ScopedSpan b(...); }` yields b as a
/// child of a without any plumbing. Spans recorded by different threads of
/// the same request (a SummarizeBatch sharing one context) become
/// additional roots — correct, if flat, rather than a fabricated order.
///
/// Overhead contract (DESIGN.md §11): tracing is off unless a request
/// carries a Trace, and a disabled ScopedSpan compiles down to one null
/// check in the constructor and one in the destructor — no clock read, no
/// allocation, no lock. An enabled span costs two clock reads and one
/// mutex-guarded vector append at destruction. Tracing observes, never
/// steers: enabling it must not change a single output byte (the golden
/// suite pins this).

namespace stmaker {

/// One finished span. Times are milliseconds since the trace epoch (the
/// Trace's construction), so a trace is self-contained and serializable
/// without wall-clock context.
struct TraceEvent {
  uint64_t id = 0;         ///< 1-based, unique within the trace.
  uint64_t parent = 0;     ///< 0 = a root span.
  std::string name;
  double start_ms = 0;
  double end_ms = 0;

  double duration_ms() const { return end_ms - start_ms; }
};

/// \brief The span collection of one request. Thread-safe for concurrent
/// ScopedSpan recording; Events()/ToJson()/ToNdjson() snapshot under the
/// same lock.
class Trace {
 public:
  using Clock = std::chrono::steady_clock;

  Trace();

  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  /// \return Finished spans in completion order (children before their
  /// parents, since a child's destructor runs first).
  std::vector<TraceEvent> Events() const;

  /// The assembled parent/child tree as one compact JSON object:
  ///   {"spans": [{"name": ..., "start_ms": ..., "end_ms": ...,
  ///               "children": [...]}]}
  /// Spans at each level are ordered by start time.
  /// \return A single-line JSON string.
  std::string ToJson() const;

  /// Flat NDJSON event log: one JSON object per line, one line per span,
  /// in completion order. Each line carries id/parent so the tree can be
  /// rebuilt downstream.
  /// \return Newline-delimited JSON, one event per line.
  std::string ToNdjson() const;

 private:
  friend class ScopedSpan;

  double SinceEpochMs(Clock::time_point t) const {
    return std::chrono::duration<double, std::milli>(t - epoch_).count();
  }
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void Record(TraceEvent event);

  Clock::time_point epoch_;
  std::atomic<uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// \brief RAII span recorder; records one span from construction to scope
/// exit.
class ScopedSpan {
 public:
  /// \param trace Destination trace, or null for the disabled fast path
  /// (one branch per constructor/destructor, nothing recorded).
  /// \param name Span name; must be a string literal (or otherwise outlive
  /// the span) — it is copied only when the span completes.
  /// \param latency_hist Optional histogram that also receives the span's
  /// duration in milliseconds (recorded even when `trace` is null).
  ScopedSpan(Trace* trace, const char* name,
             Histogram* latency_hist = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Trace* trace_;
  const char* name_;
  Histogram* hist_;
  uint64_t id_ = 0;
  uint64_t parent_ = 0;
  Trace::Clock::time_point start_;
  ScopedSpan* prev_ = nullptr;  ///< Enclosing span on this thread.
};

}  // namespace stmaker

#endif  // STMAKER_COMMON_TRACE_H_
