#ifndef STMAKER_COMMON_RANDOM_H_
#define STMAKER_COMMON_RANDOM_H_

/// \file
/// Deterministic xoshiro256** PRNG with distribution helpers.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stmaker {

/// \brief Deterministic xoshiro256** PRNG with distribution helpers.
///
/// Every stochastic component in the library (map generation, trajectory
/// simulation, POI placement) takes an explicit seed so that tests and
/// benchmark tables are reproducible run-to-run and across platforms; we do
/// not use std::mt19937 distributions because their output is not specified
/// identically across standard library implementations.
class Random {
 public:
  /// Seeds the generator via SplitMix64 so that nearby seeds give unrelated
  /// streams.
  explicit Random(uint64_t seed);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box–Muller.
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// True with probability p.
  bool Bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double Exponential(double mean);

  /// Zipf-distributed rank in [0, n) with exponent s: P(k) ∝ 1/(k+1)^s.
  /// Used to skew landmark popularity for the HITS significance corpus.
  uint64_t Zipf(uint64_t n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Non-positive total weight falls back to uniform.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Forks an independent stream; children of distinct calls are unrelated.
  Random Fork();

 private:
  uint64_t s_[4];
};

}  // namespace stmaker

#endif  // STMAKER_COMMON_RANDOM_H_
