#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace stmaker {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = RotL(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotL(s_[3], 45);
  return result;
}

double Random::Uniform() {
  // 53 random mantissa bits → uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform();
}

uint64_t Random::UniformInt(uint64_t n) {
  STMAKER_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  STMAKER_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::Normal() {
  // Box–Muller; discard the second variate for simplicity.
  double u1 = Uniform();
  double u2 = Uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Random::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Random::Bernoulli(double p) { return Uniform() < p; }

double Random::Exponential(double mean) {
  STMAKER_CHECK(mean > 0);
  double u = Uniform();
  if (u < 1e-300) u = 1e-300;
  return -mean * std::log(u);
}

uint64_t Random::Zipf(uint64_t n, double s) {
  STMAKER_CHECK(n > 0);
  // Inverse-CDF over the (cached-free) harmonic weights. n is small in our
  // use (number of landmarks), so a linear scan is acceptable and exact.
  double total = 0;
  for (uint64_t k = 0; k < n; ++k) total += 1.0 / std::pow(k + 1.0, s);
  double target = Uniform() * total;
  double acc = 0;
  for (uint64_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(k + 1.0, s);
    if (acc >= target) return k;
  }
  return n - 1;
}

size_t Random::WeightedIndex(const std::vector<double>& weights) {
  STMAKER_CHECK(!weights.empty());
  double total = 0;
  for (double w : weights) {
    if (w > 0) total += w;
  }
  if (total <= 0) return UniformInt(weights.size());
  double target = Uniform() * total;
  double acc = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0) acc += weights[i];
    if (acc >= target) return i;
  }
  return weights.size() - 1;
}

Random Random::Fork() { return Random(Next()); }

}  // namespace stmaker
