#ifndef STMAKER_COMMON_METRICS_H_
#define STMAKER_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

/// \file
/// \brief Process-wide operational metrics: counters, gauges, and
/// fixed-bucket latency histograms behind a lock-sharded registry.
///
/// Design rules (DESIGN.md §11):
///   - Recording is wait-free after the first lookup: Counter/Gauge are one
///     relaxed atomic op, Histogram is two relaxed ops plus a bucket scan
///     over a small fixed array. No locks, no allocation, no clock reads.
///   - Registry lookups (`counter("x")`) take one shard mutex and are meant
///     to happen once per call site — cache the returned reference in a
///     function-local `static` (metric objects live as long as the
///     registry; the registry never removes them).
///   - Metrics observe, never steer: no library code path reads a metric to
///     make a decision, so instrumentation can never change results. The
///     golden suite pins this (tracing/metrics on vs off, byte-identical).
///   - Snapshot() copies every value while holding each shard lock in turn;
///     the copy is then immune to later increments (snapshot isolation per
///     metric, not a global atomic cut — fine for operational telemetry).

namespace stmaker {

/// \brief A monotonically increasing counter (relaxed atomic).
class Counter {
 public:
  /// Adds to the counter; safe from any thread.
  /// \param n Amount to add (defaults to 1).
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  /// \return The current total (relaxed read — may trail concurrent
  /// increments by a few).
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief A last-written level (relaxed atomic); Set and Add from any
/// thread.
class Gauge {
 public:
  /// Overwrites the level.
  /// \param v The new value.
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  /// Adjusts the level by a signed delta.
  /// \param d The delta to add (may be negative).
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  /// \return The last written (or accumulated) level.
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of one histogram, with quantile extraction.
struct HistogramSnapshot {
  /// Upper bounds of the finite buckets, strictly increasing. Bucket i
  /// holds observations v with bounds[i-1] < v <= bounds[i]; one extra
  /// overflow bucket past the last bound catches everything larger.
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  ///< bounds.size() + 1 entries.
  uint64_t count = 0;            ///< Total observations.
  double sum = 0;                ///< Sum of observed values.

  double mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Quantile estimation by linear interpolation inside the bucket that
  /// contains the target rank (the classic Prometheus estimator). The
  /// overflow bucket reports its lower bound — an estimator can't invent
  /// an upper edge it doesn't have.
  /// \param q The quantile to estimate, in [0, 1].
  /// \return The estimated value, or 0 when there are no observations.
  double Quantile(double q) const;

  double p50() const { return Quantile(0.50); }
  double p95() const { return Quantile(0.95); }
  double p99() const { return Quantile(0.99); }
};

/// \brief A fixed-bucket histogram; bucket bounds are frozen at
/// construction. Observe() is lock-free (relaxed atomics), Snapshot()
/// copies the counters.
class Histogram {
 public:
  static constexpr size_t kMaxBuckets = 64;

  /// Default latency bounds in milliseconds: four sub-10 µs buckets
  /// (0.5/1/2/5 µs — microsecond-scale stages like partition/select need
  /// them for sane quantile interpolation) followed by 20 geometric
  /// buckets from 0.01 ms to ~2.6 s (x2 per bucket), sized so every
  /// pipeline stage in this codebase lands well inside the finite range.
  static std::vector<double> DefaultLatencyBoundsMs();

  /// \param bounds Finite-bucket upper bounds; must be non-empty, strictly
  /// increasing, and at most kMaxBuckets long.
  explicit Histogram(std::vector<double> bounds = DefaultLatencyBoundsMs());

  /// Records one observation (lock-free; relaxed atomics).
  /// \param value The observed value, in the same unit as the bounds.
  void Observe(double value);
  /// \return A point-in-time copy of the bucket counters, ready for
  /// quantile extraction.
  HistogramSnapshot Snapshot() const;
  /// \return Total observations so far (relaxed read).
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// \return The finite-bucket upper bounds this histogram was built with.
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  /// counts_[bounds_.size()] is the overflow bucket.
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Everything the registry knew at one point in time, ready to serialize.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;  // sorted by name
  std::vector<std::pair<std::string, int64_t>> gauges;     // sorted by name
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// Counter value by name; 0 when absent (a metric that was never touched
  /// was never registered — semantically zero).
  uint64_t counter(std::string_view name) const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, p50, p95, p99, buckets}}}. Compact
  /// (single line) so it can ride in an NDJSON response.
  std::string ToJson() const;
};

/// \brief Name -> metric registry, lock-sharded so unrelated call sites
/// never contend on registration or snapshot.
///
/// Metrics are created on first use and never removed; the returned
/// references stay valid for the registry's lifetime. Re-requesting a name
/// returns the same object; requesting an existing name as a different
/// kind (or a histogram with different bounds) is a programming error
/// (STMAKER_CHECK).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the counter with this name.
  /// \param name The metric name (dotted lowercase by convention).
  /// \return A reference valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  /// Finds or creates the gauge with this name.
  /// \param name The metric name.
  /// \return A reference valid for the registry's lifetime.
  Gauge& gauge(std::string_view name);
  /// Finds or creates the histogram with this name, using the default
  /// latency bounds on first creation.
  /// \param name The metric name.
  /// \return A reference valid for the registry's lifetime.
  Histogram& histogram(std::string_view name);
  /// Finds or creates the histogram with this name and explicit bounds.
  /// \param name The metric name.
  /// \param bounds Finite-bucket upper bounds; must match the existing
  /// histogram's bounds when the name is already registered.
  /// \return A reference valid for the registry's lifetime.
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// \return A copy of every registered metric's current value (per-metric
  /// snapshot isolation; see the file comment).
  MetricsSnapshot Snapshot() const;

  /// The process-wide registry the library instruments into. Tests that
  /// need isolation construct their own MetricsRegistry; tests asserting
  /// on library-side counters read deltas of Global() instead (counters
  /// are monotonic, so deltas are race-free to reason about).
  static MetricsRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable std::mutex mu;
    // std::map: stable iteration order makes snapshots sorted per shard
    // for free; the full snapshot re-sorts across shards anyway.
    std::map<std::string, Entry, std::less<>> entries;
  };

  Shard& ShardFor(std::string_view name);
  const Shard& ShardFor(std::string_view name) const;
  Entry& GetOrCreate(std::string_view name, Kind kind);

  Shard shards_[kNumShards];
};

/// \brief RAII wall-clock timer: observes the elapsed milliseconds into a
/// histogram at scope exit. Null histogram = fully disabled (one branch).
class ScopedLatencyTimer {
 public:
  /// \param hist Destination histogram, or null to disable the timer.
  explicit ScopedLatencyTimer(Histogram* hist);
  ~ScopedLatencyTimer();

  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;

 private:
  Histogram* hist_;
  uint64_t start_ns_ = 0;
};

}  // namespace stmaker

#endif  // STMAKER_COMMON_METRICS_H_
