#ifndef STMAKER_COMMON_FILEUTIL_H_
#define STMAKER_COMMON_FILEUTIL_H_

/// \file
/// Filesystem helpers: existence checks, whole-file read/write, and
/// atomic replace-on-write.

#include <string>

#include "common/status.h"

namespace stmaker {

/// True when `path` exists and is readable.
bool FileExists(const std::string& path);

/// Reads the whole file into a string. Failpoints: "io/open-read",
/// "io/read".
Result<std::string> ReadFileToString(const std::string& path);

/// Writes `content` to `path` non-atomically (truncating). Failpoints:
/// "io/open-write", "io/write", "io/close".
Status WriteFileToPath(const std::string& path, const std::string& content);

/// Writes `content` to `path + ".tmp"` and renames it into place, so a
/// crash or injected failure never leaves a partially written `path`
/// visible (the stale temp file is removed on failure). Failpoint:
/// "io/rename", plus the WriteFileToPath ones.
Status WriteFileAtomic(const std::string& path, const std::string& content);

/// Renames `from` to `to`, replacing `to` (POSIX rename semantics).
/// Failpoint: "io/rename".
Status RenameFile(const std::string& from, const std::string& to);

/// Best-effort removal; missing files are not an error.
void RemoveFileIfExists(const std::string& path);

}  // namespace stmaker

#endif  // STMAKER_COMMON_FILEUTIL_H_
