#ifndef STMAKER_COMMON_STRINGS_H_
#define STMAKER_COMMON_STRINGS_H_

/// \file
/// Small string utilities: split, join, trim, prefix tests, formatting.

#include <string>
#include <string_view>
#include <vector>

namespace stmaker {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a double with `digits` decimals, trimming trailing zeros
/// ("14.0" → "14", "13.50" → "13.5"). Used by the text templates so that
/// summaries read naturally.
std::string FormatNumber(double value, int digits = 1);

/// Formats a duration in seconds as e.g. "167 seconds", "4 minutes",
/// "1 hour 12 minutes".
std::string FormatDuration(double seconds);

}  // namespace stmaker

#endif  // STMAKER_COMMON_STRINGS_H_
