#include "common/arena.h"

#include <algorithm>

#include "common/check.h"

namespace stmaker {

namespace {

inline size_t AlignUp(size_t value, size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

Arena::Arena(size_t block_bytes)
    : block_bytes_(std::max(block_bytes, kMinBlockBytes)) {}

Arena::~Arena() = default;

void* Arena::Allocate(size_t bytes, size_t align) {
  STMAKER_DCHECK(align > 0 && (align & (align - 1)) == 0);
  if (bytes == 0) bytes = 1;
  // Bump within the current block when it fits. Alignment is applied to
  // the absolute address — new[] only guarantees malloc alignment, which
  // over-aligned requests (e.g. 64-byte) exceed.
  while (current_ < blocks_.size()) {
    Block& b = blocks_[current_];
    uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
    size_t offset = AlignUp(base + b.used, align) - base;
    if (offset + bytes <= b.size) {
      b.used = offset + bytes;
      bytes_in_use_ += bytes;
      return b.data.get() + offset;
    }
    // Advance into an already-chained (previously rewound) block, if any.
    if (current_ + 1 < blocks_.size()) {
      ++current_;
      blocks_[current_].used = 0;
      continue;
    }
    break;
  }
  // Chain a fresh block; oversized requests get a dedicated one so a large
  // scratch vector doesn't force every later block to its size. `align`
  // slack guarantees the aligned cursor still fits.
  size_t size = std::max(block_bytes_, bytes + align);
  Block block;
  block.data = std::make_unique<char[]>(size);
  block.size = size;
  bytes_reserved_ += size;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  Block& b = blocks_.back();
  uintptr_t base = reinterpret_cast<uintptr_t>(b.data.get());
  size_t offset = AlignUp(base, align) - base;
  b.used = offset + bytes;
  bytes_in_use_ += bytes;
  return b.data.get() + offset;
}

void Arena::Reset() {
  for (Block& b : blocks_) b.used = 0;
  current_ = 0;
  bytes_in_use_ = 0;
}

Arena::Mark Arena::Position() const {
  if (blocks_.empty()) return {0, 0, 0};
  return {current_, blocks_[current_].used, bytes_in_use_};
}

void Arena::Rewind(const Mark& mark) {
  if (blocks_.empty()) return;
  for (size_t i = mark.block + 1; i < blocks_.size(); ++i) blocks_[i].used = 0;
  if (mark.block < blocks_.size()) blocks_[mark.block].used = mark.used;
  current_ = std::min(mark.block, blocks_.size() - 1);
  bytes_in_use_ = mark.in_use;
}

Arena& Arena::ThreadLocal() {
  thread_local Arena arena;
  return arena;
}

}  // namespace stmaker
