#ifndef STMAKER_COMMON_STATUS_H_
#define STMAKER_COMMON_STATUS_H_

/// \file
/// Status and Result<T>: the error-handling vocabulary of every library
/// entry point (no exceptions cross the API boundary).

#include <string>
#include <utility>
#include <variant>

namespace stmaker {

/// Error categories used across the library. The set is deliberately small;
/// the human-readable message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

/// CamelCase name of a status category ("DeadlineExceeded", "OK", ...).
const char* StatusCodeName(StatusCode code);

/// \brief RocksDB-style status object. Library entry points never throw;
/// recoverable failures are reported through Status / Result<T>.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (a code
/// plus a message string that is empty in the OK case).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  /// Factory helpers, one per category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<category>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status. The value accessors
/// must only be called after checking ok().
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error keeps call sites terse:
  /// `return value;` or `return Status::InvalidArgument(...)`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Error status; OK() when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& value() const& { return std::get<T>(data_); }
  T& value() & { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define STMAKER_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::stmaker::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                       \
  } while (0)

/// Evaluates a Result<T> expression into `lhs`, or propagates its error.
#define STMAKER_ASSIGN_OR_RETURN(lhs, expr)          \
  auto STMAKER_CONCAT_(_res, __LINE__) = (expr);     \
  if (!STMAKER_CONCAT_(_res, __LINE__).ok())         \
    return STMAKER_CONCAT_(_res, __LINE__).status(); \
  lhs = std::move(STMAKER_CONCAT_(_res, __LINE__)).value()

#define STMAKER_CONCAT_INNER_(a, b) a##b
#define STMAKER_CONCAT_(a, b) STMAKER_CONCAT_INNER_(a, b)

}  // namespace stmaker

#endif  // STMAKER_COMMON_STATUS_H_
