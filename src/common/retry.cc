#include "common/retry.h"

#include <chrono>
#include <thread>

#include "common/fileutil.h"
#include "common/random.h"

namespace stmaker {
namespace retry_internal {

double BackoffDelayMs(const RetryOptions& options, int retry,
                      double jitter_draw) {
  double base = options.initial_backoff_ms;
  for (int i = 1; i < retry; ++i) base *= options.multiplier;
  base = std::min(base, options.max_backoff_ms);
  double jitter = std::clamp(options.jitter, 0.0, 1.0);
  // Scale into [1 - jitter, 1] so the delay never exceeds the nominal
  // backoff (full jitter would let retriers fire immediately).
  return base * (1.0 - jitter * jitter_draw);
}

void SleepForMs(const RetryOptions& options, double delay_ms) {
  if (options.context != nullptr) {
    delay_ms = std::min(delay_ms, options.context->RemainingMs());
  }
  if (delay_ms <= 0) return;
  if (options.sleep_ms) {
    options.sleep_ms(delay_ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      delay_ms));
}

double JitterDraw(uint64_t seed, int retry) {
  // SplitMix64 seeding makes nearby seeds unrelated, so seed + retry is a
  // cheap deterministic per-attempt stream.
  return Random(seed + static_cast<uint64_t>(retry)).Uniform();
}

}  // namespace retry_internal

Result<std::string> ReadFileToStringWithRetry(const std::string& path,
                                              const RetryOptions& options) {
  return RetryWithBackoff(options,
                          [&path] { return ReadFileToString(path); });
}

}  // namespace stmaker
