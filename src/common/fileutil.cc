#include "common/fileutil.h"

#include <cstdio>

#include "common/failpoint.h"

namespace stmaker {

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

Result<std::string> ReadFileToString(const std::string& path) {
  STMAKER_FAILPOINT("io/open-read", return Status::IoError(
      "injected failure at io/open-read: " + path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open for reading: " + path);
  }
  std::string text;
  char buf[4096];
  size_t n;
  bool injected_read_error = false;
  STMAKER_FAILPOINT("io/read", injected_read_error = true);
  while (!injected_read_error &&
         (n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  bool read_error = injected_read_error || std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("read failed: " + path);
  }
  return text;
}

Status WriteFileToPath(const std::string& path, const std::string& content) {
  STMAKER_FAILPOINT("io/open-write", return Status::IoError(
      "injected failure at io/open-write: " + path));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  bool injected_write_error = false;
  STMAKER_FAILPOINT("io/write", injected_write_error = true);
  bool write_error =
      injected_write_error ||
      std::fwrite(content.data(), 1, content.size(), f) != content.size();
  STMAKER_FAILPOINT("io/close", write_error = true);
  if (std::fclose(f) != 0) write_error = true;
  if (write_error) {
    RemoveFileIfExists(path);
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  STMAKER_RETURN_IF_ERROR(WriteFileToPath(tmp, content));
  Status renamed = RenameFile(tmp, path);
  if (!renamed.ok()) {
    RemoveFileIfExists(tmp);
    return renamed;
  }
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  STMAKER_FAILPOINT("io/rename", return Status::IoError(
      "injected failure at io/rename: " + to));
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IoError("cannot rename " + from + " to " + to);
  }
  return Status::OK();
}

void RemoveFileIfExists(const std::string& path) {
  std::remove(path.c_str());
}

}  // namespace stmaker
