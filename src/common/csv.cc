#include "common/csv.h"

#include <cstdio>

#include "common/fileutil.h"
#include "common/strings.h"

namespace stmaker {

namespace {

bool NeedsQuoting(const std::string& field) {
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(const std::string& field) {
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string FormatCsvRow(const std::vector<std::string>& fields) {
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) line += ',';
    line += NeedsQuoting(fields[i]) ? QuoteField(fields[i]) : fields[i];
  }
  line += '\n';
  return line;
}

Result<CsvWriter> CsvWriter::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open for writing: " + path);
  }
  return CsvWriter(f);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status CsvWriter::WriteRow(const std::vector<std::string>& fields) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("CSV writer is closed");
  }
  std::string line = FormatCsvRow(fields);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::IoError("short write");
  }
  return Status::OK();
}

Status CsvWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IoError("close failed");
  return Status::OK();
}

Result<std::vector<std::vector<std::string>>> ParseCsv(
    const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        row.push_back(std::move(field));
        field.clear();
        field_started = true;
        break;
      case '\r':
        break;  // Tolerate CRLF.
      case '\n':
        row.push_back(std::move(field));
        field.clear();
        rows.push_back(std::move(row));
        row.clear();
        field_started = false;
        break;
      default:
        field += c;
        field_started = true;
    }
  }
  if (in_quotes) {
    return Status::InvalidArgument("unterminated quoted CSV field");
  }
  if (field_started || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

Result<std::vector<std::vector<std::string>>> ReadCsvFile(
    const std::string& path) {
  STMAKER_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseCsv(text);
}

Result<std::vector<std::vector<std::string>>> ParseCsvTable(
    const std::string& text, const std::vector<std::string>& expected_header,
    const std::string& context) {
  STMAKER_ASSIGN_OR_RETURN(auto rows, ParseCsv(text));
  if (rows.empty()) {
    return Status::InvalidArgument(context + ": missing CSV header (want '" +
                                   Join(expected_header, ",") + "')");
  }
  if (rows[0] != expected_header) {
    return Status::InvalidArgument(context + ": bad CSV header '" +
                                   Join(rows[0], ",") + "' (want '" +
                                   Join(expected_header, ",") + "')");
  }
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != expected_header.size()) {
      return Status::InvalidArgument(StrFormat(
          "%s: row %zu has %zu fields, want %zu", context.c_str(), r + 1,
          rows[r].size(), expected_header.size()));
    }
  }
  rows.erase(rows.begin());
  return rows;
}

Result<std::vector<std::vector<std::string>>> ReadCsvTable(
    const std::string& path,
    const std::vector<std::string>& expected_header) {
  STMAKER_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseCsvTable(text, expected_header, path);
}

}  // namespace stmaker
