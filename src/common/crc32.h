#ifndef STMAKER_COMMON_CRC32_H_
#define STMAKER_COMMON_CRC32_H_

/// \file
/// CRC-32 checksum used to verify persisted model and dataset files.

#include <cstdint>
#include <string_view>

namespace stmaker {

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial 0xEDB88320) of `data`.
/// Used by model manifests to detect truncated or bit-flipped files before
/// they are parsed. `seed` allows incremental computation: pass a previous
/// checksum to continue it over the next chunk.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace stmaker

#endif  // STMAKER_COMMON_CRC32_H_
