#include "io/geojson.h"

#include <set>

#include "io/json.h"

namespace stmaker {

namespace {

void EmitPosition(JsonWriter* json, const LocalProjection& projection,
                  const Vec2& pos) {
  LatLon ll = projection.ToLatLon(pos);
  json->BeginArray().Number(ll.lon).Number(ll.lat).EndArray();
}

}  // namespace

std::string TrajectoryToGeoJson(const RawTrajectory& trajectory,
                                const LocalProjection& projection) {
  JsonWriter json;
  json.BeginObject();
  json.Key("type").String("FeatureCollection");
  json.Key("features").BeginArray();
  json.BeginObject();
  json.Key("type").String("Feature");
  json.Key("properties").BeginObject();
  json.Key("kind").String("raw_trajectory");
  json.Key("traveler").Int(trajectory.traveler);
  json.Key("start_time").Number(trajectory.StartTime());
  json.Key("end_time").Number(trajectory.EndTime());
  json.Key("num_fixes").Int(static_cast<long long>(trajectory.size()));
  json.EndObject();
  json.Key("geometry").BeginObject();
  json.Key("type").String("LineString");
  json.Key("coordinates").BeginArray();
  for (const RawSample& s : trajectory.samples) {
    EmitPosition(&json, projection, s.pos);
  }
  json.EndArray();
  json.EndObject();
  json.EndObject();
  json.EndArray();
  json.EndObject();
  return json.str();
}

std::string SummaryToGeoJson(const Summary& summary,
                             const LandmarkIndex& landmarks,
                             const LocalProjection& projection) {
  JsonWriter json;
  json.BeginObject();
  json.Key("type").String("FeatureCollection");
  json.Key("features").BeginArray();

  // One LineString per partition through its landmark chain.
  for (size_t p = 0; p < summary.partitions.size(); ++p) {
    const PartitionSummary& part = summary.partitions[p];
    json.BeginObject();
    json.Key("type").String("Feature");
    json.Key("properties").BeginObject();
    json.Key("kind").String("partition");
    json.Key("index").Int(static_cast<long long>(p));
    json.Key("sentence").String(part.sentence);
    json.Key("selected_features").BeginArray();
    for (const SelectedFeature& sel : part.selected) {
      json.Int(static_cast<long long>(sel.feature));
    }
    json.EndArray();
    json.EndObject();
    json.Key("geometry").BeginObject();
    json.Key("type").String("LineString");
    json.Key("coordinates").BeginArray();
    for (size_t s = part.seg_begin; s <= part.seg_end; ++s) {
      EmitPosition(&json, projection,
                   landmarks.landmark(summary.symbolic.samples[s].landmark)
                       .pos);
    }
    json.EndArray();
    json.EndObject();
    json.EndObject();
  }

  // One Point per partition-boundary landmark.
  std::set<LandmarkId> boundary;
  for (const PartitionSummary& part : summary.partitions) {
    boundary.insert(part.source);
    boundary.insert(part.destination);
  }
  for (LandmarkId id : boundary) {
    const Landmark& lm = landmarks.landmark(id);
    json.BeginObject();
    json.Key("type").String("Feature");
    json.Key("properties").BeginObject();
    json.Key("kind").String("landmark");
    json.Key("name").String(lm.name);
    json.Key("significance").Number(lm.significance);
    json.EndObject();
    json.Key("geometry").BeginObject();
    json.Key("type").String("Point");
    json.Key("coordinates");
    EmitPosition(&json, projection, lm.pos);
    json.EndObject();
    json.EndObject();
  }

  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace stmaker
