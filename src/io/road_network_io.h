#ifndef STMAKER_IO_ROAD_NETWORK_IO_H_
#define STMAKER_IO_ROAD_NETWORK_IO_H_

/// \file
/// CSV persistence for road networks (the digital-map interchange
/// format).

#include <string>

#include "common/status.h"
#include "roadnet/road_network.h"

namespace stmaker {

/// \brief CSV persistence for road networks (the digital-map interchange
/// format). A network is stored as two files:
///
///   <prefix>_nodes.csv : node_id,x,y
///   <prefix>_edges.csv : edge_id,from,to,grade,width,direction,name,bias
///
/// Node and edge ids are re-assigned densely on load in file order, so a
/// round trip preserves ids. Turning points are re-derived from topology
/// and the spatial index is rebuilt, so the loaded network is immediately
/// usable.
Status WriteRoadNetworkCsv(const std::string& prefix,
                           const RoadNetwork& network);

/// Loads a network written by WriteRoadNetworkCsv.
Result<RoadNetwork> ReadRoadNetworkCsv(const std::string& prefix);

}  // namespace stmaker

#endif  // STMAKER_IO_ROAD_NETWORK_IO_H_
