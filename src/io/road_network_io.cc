#include "io/road_network_io.h"

#include <cstdlib>

#include "common/csv.h"
#include "common/strings.h"

namespace stmaker {

namespace {

Result<double> ParseDouble(const std::string& field) {
  char* end = nullptr;
  double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: '" + field + "'");
  }
  return v;
}

Result<int64_t> ParseInt(const std::string& field) {
  char* end = nullptr;
  long long v = std::strtoll(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("not an integer: '" + field + "'");
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Status WriteRoadNetworkCsv(const std::string& prefix,
                           const RoadNetwork& network) {
  {
    STMAKER_ASSIGN_OR_RETURN(CsvWriter writer,
                             CsvWriter::Open(prefix + "_nodes.csv"));
    STMAKER_RETURN_IF_ERROR(writer.WriteRow({"node_id", "x", "y"}));
    for (const RoadNode& node : network.nodes()) {
      STMAKER_RETURN_IF_ERROR(writer.WriteRow(
          {std::to_string(node.id), StrFormat("%.3f", node.pos.x),
           StrFormat("%.3f", node.pos.y)}));
    }
    STMAKER_RETURN_IF_ERROR(writer.Close());
  }
  {
    STMAKER_ASSIGN_OR_RETURN(CsvWriter writer,
                             CsvWriter::Open(prefix + "_edges.csv"));
    STMAKER_RETURN_IF_ERROR(writer.WriteRow({"edge_id", "from", "to",
                                             "grade", "width", "direction",
                                             "name", "bias"}));
    for (const RoadEdge& edge : network.edges()) {
      STMAKER_RETURN_IF_ERROR(writer.WriteRow(
          {std::to_string(edge.id), std::to_string(edge.from),
           std::to_string(edge.to),
           std::to_string(static_cast<int>(edge.grade)),
           StrFormat("%.3f", edge.width_m),
           std::to_string(static_cast<int>(edge.direction)), edge.name,
           StrFormat("%.6f", edge.cost_bias)}));
    }
    STMAKER_RETURN_IF_ERROR(writer.Close());
  }
  return Status::OK();
}

Result<RoadNetwork> ReadRoadNetworkCsv(const std::string& prefix) {
  RoadNetwork network;

  STMAKER_ASSIGN_OR_RETURN(
      auto node_rows,
      ReadCsvTable(prefix + "_nodes.csv", {"node_id", "x", "y"}));
  for (size_t r = 0; r < node_rows.size(); ++r) {
    const auto& row = node_rows[r];
    STMAKER_ASSIGN_OR_RETURN(int64_t id, ParseInt(row[0]));
    STMAKER_ASSIGN_OR_RETURN(double x, ParseDouble(row[1]));
    STMAKER_ASSIGN_OR_RETURN(double y, ParseDouble(row[2]));
    NodeId assigned = network.AddNode({x, y});
    if (assigned != id) {
      return Status::InvalidArgument(
          "node ids must be dense and in file order");
    }
  }

  STMAKER_ASSIGN_OR_RETURN(
      auto edge_rows,
      ReadCsvTable(prefix + "_edges.csv",
                   {"edge_id", "from", "to", "grade", "width", "direction",
                    "name", "bias"}));
  for (size_t r = 0; r < edge_rows.size(); ++r) {
    const auto& row = edge_rows[r];
    STMAKER_ASSIGN_OR_RETURN(int64_t id, ParseInt(row[0]));
    STMAKER_ASSIGN_OR_RETURN(int64_t from, ParseInt(row[1]));
    STMAKER_ASSIGN_OR_RETURN(int64_t to, ParseInt(row[2]));
    STMAKER_ASSIGN_OR_RETURN(int64_t grade, ParseInt(row[3]));
    STMAKER_ASSIGN_OR_RETURN(double width, ParseDouble(row[4]));
    STMAKER_ASSIGN_OR_RETURN(int64_t direction, ParseInt(row[5]));
    STMAKER_ASSIGN_OR_RETURN(double bias, ParseDouble(row[7]));
    if (!IsValidRoadGrade(static_cast<int>(grade))) {
      return Status::InvalidArgument(
          StrFormat("invalid road grade %lld", static_cast<long long>(grade)));
    }
    if (direction != 1 && direction != 2) {
      return Status::InvalidArgument("invalid traffic direction");
    }
    STMAKER_ASSIGN_OR_RETURN(
        EdgeId assigned,
        network.AddEdge(from, to, static_cast<RoadGrade>(grade), width,
                        static_cast<TrafficDirection>(direction), row[6]));
    if (assigned != id) {
      return Status::InvalidArgument(
          "edge ids must be dense and in file order");
    }
    network.mutable_edge(assigned).cost_bias = bias;
  }

  network.AnnotateTurningPoints();
  network.BuildSpatialIndex();
  return network;
}

}  // namespace stmaker
