#include "io/trajectory_io.h"

#include <cstdlib>

#include "common/csv.h"
#include "common/strings.h"

namespace stmaker {

namespace {

Result<double> ParseDouble(const std::string& field) {
  char* end = nullptr;
  double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: '" + field + "'");
  }
  return v;
}

Result<int64_t> ParseInt(const std::string& field) {
  char* end = nullptr;
  long long v = std::strtoll(field.c_str(), &end, 10);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("not an integer: '" + field + "'");
  }
  return static_cast<int64_t>(v);
}

}  // namespace

Status WriteTrajectoriesCsv(const std::string& path,
                            const std::vector<RawTrajectory>& trajectories) {
  STMAKER_ASSIGN_OR_RETURN(CsvWriter writer, CsvWriter::Open(path));
  STMAKER_RETURN_IF_ERROR(
      writer.WriteRow({"trajectory_id", "traveler", "x", "y", "time"}));
  for (size_t t = 0; t < trajectories.size(); ++t) {
    const RawTrajectory& trajectory = trajectories[t];
    for (const RawSample& s : trajectory.samples) {
      STMAKER_RETURN_IF_ERROR(writer.WriteRow(
          {std::to_string(t), std::to_string(trajectory.traveler),
           StrFormat("%.3f", s.pos.x), StrFormat("%.3f", s.pos.y),
           StrFormat("%.3f", s.time)}));
    }
  }
  return writer.Close();
}

Result<std::vector<RawTrajectory>> ReadTrajectoriesCsv(
    const std::string& path) {
  STMAKER_ASSIGN_OR_RETURN(
      auto rows,
      ReadCsvTable(path, {"trajectory_id", "traveler", "x", "y", "time"}));

  std::vector<RawTrajectory> out;
  int64_t current_id = -1;
  bool have_current = false;
  std::vector<int64_t> seen_ids;
  for (size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    STMAKER_ASSIGN_OR_RETURN(int64_t id, ParseInt(row[0]));
    STMAKER_ASSIGN_OR_RETURN(int64_t traveler, ParseInt(row[1]));
    STMAKER_ASSIGN_OR_RETURN(double x, ParseDouble(row[2]));
    STMAKER_ASSIGN_OR_RETURN(double y, ParseDouble(row[3]));
    STMAKER_ASSIGN_OR_RETURN(double time, ParseDouble(row[4]));
    if (!have_current || id != current_id) {
      for (int64_t prev : seen_ids) {
        if (prev == id) {
          return Status::InvalidArgument(
              StrFormat("trajectory id %lld is interleaved",
                        static_cast<long long>(id)));
        }
      }
      seen_ids.push_back(id);
      out.emplace_back();
      current_id = id;
      have_current = true;
    }
    out.back().traveler = traveler;
    out.back().samples.push_back({{x, y}, time});
  }
  return out;
}

}  // namespace stmaker
