#include "io/poi_io.h"

#include <cstdlib>

#include "common/csv.h"
#include "common/strings.h"

namespace stmaker {

Status WritePoisCsv(const std::string& path,
                    const std::vector<RawPoi>& pois) {
  STMAKER_ASSIGN_OR_RETURN(CsvWriter writer, CsvWriter::Open(path));
  STMAKER_RETURN_IF_ERROR(writer.WriteRow({"x", "y", "name"}));
  for (const RawPoi& poi : pois) {
    STMAKER_RETURN_IF_ERROR(writer.WriteRow({StrFormat("%.3f", poi.pos.x),
                                             StrFormat("%.3f", poi.pos.y),
                                             poi.name}));
  }
  return writer.Close();
}

Result<std::vector<RawPoi>> ReadPoisCsv(const std::string& path) {
  STMAKER_ASSIGN_OR_RETURN(auto rows, ReadCsvTable(path, {"x", "y", "name"}));
  std::vector<RawPoi> out;
  for (size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    char* end = nullptr;
    double x = std::strtod(row[0].c_str(), &end);
    if (end == row[0].c_str() || *end != '\0') {
      return Status::InvalidArgument("bad x: " + row[0]);
    }
    double y = std::strtod(row[1].c_str(), &end);
    if (end == row[1].c_str() || *end != '\0') {
      return Status::InvalidArgument("bad y: " + row[1]);
    }
    out.push_back({{x, y}, row[2]});
  }
  return out;
}

}  // namespace stmaker
