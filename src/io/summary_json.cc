#include "io/summary_json.h"

#include "io/json.h"

namespace stmaker {

std::string SummaryToJson(const Summary& summary,
                          const FeatureRegistry& registry) {
  JsonWriter json;
  json.BeginObject();
  json.Key("text").String(summary.text);

  json.Key("symbolic").BeginArray();
  for (const SymbolicSample& s : summary.symbolic.samples) {
    json.BeginObject();
    json.Key("landmark").Int(s.landmark);
    json.Key("time").Number(s.time);
    json.EndObject();
  }
  json.EndArray();

  json.Key("partitions").BeginArray();
  for (const PartitionSummary& p : summary.partitions) {
    json.BeginObject();
    json.Key("source").Int(p.source);
    json.Key("source_name").String(p.source_name);
    json.Key("destination").Int(p.destination);
    json.Key("destination_name").String(p.destination_name);
    json.Key("seg_begin").Int(static_cast<long long>(p.seg_begin));
    json.Key("seg_end").Int(static_cast<long long>(p.seg_end));
    json.Key("sentence").String(p.sentence);

    json.Key("irregular_rates").BeginObject();
    for (size_t f = 0; f < p.irregular_rates.size() && f < registry.size();
         ++f) {
      json.Key(registry.def(f).id).Number(p.irregular_rates[f]);
    }
    json.EndObject();

    // Degraded-serving marker: present only when the model lacked a
    // baseline for some features (BaselineStatus::kNoBaseline), so fully
    // trained serving keeps its exact historical output.
    if (!p.baselines.empty()) {
      json.Key("no_baseline").BeginArray();
      for (size_t f = 0; f < p.baselines.size() && f < registry.size(); ++f) {
        if (p.baselines[f] == BaselineStatus::kNoBaseline) {
          json.String(registry.def(f).id);
        }
      }
      json.EndArray();
    }

    json.Key("selected").BeginArray();
    for (const SelectedFeature& sel : p.selected) {
      json.BeginObject();
      json.Key("feature").String(sel.feature < registry.size()
                                     ? registry.def(sel.feature).id
                                     : std::to_string(sel.feature));
      json.Key("rate").Number(sel.irregular_rate);
      json.Key("phrase").String(sel.phrase);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

}  // namespace stmaker
