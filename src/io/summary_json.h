#ifndef STMAKER_IO_SUMMARY_JSON_H_
#define STMAKER_IO_SUMMARY_JSON_H_

/// \file
/// JSON serialization of summaries.

#include <string>

#include "core/feature.h"
#include "core/summary.h"

namespace stmaker {

/// \brief Serializes a Summary as a compact JSON document:
///
/// {
///   "text": "...",
///   "symbolic": [{"landmark": 12, "time": 33840.0}, ...],
///   "partitions": [{
///     "source": 12, "source_name": "...",
///     "destination": 40, "destination_name": "...",
///     "seg_begin": 0, "seg_end": 5,
///     "sentence": "...",
///     "irregular_rates": {"grade_of_road": 0.12, ...},
///     "selected": [{"feature": "speed", "rate": 0.41, "phrase": "..."}]
///   }, ...]
/// }
///
/// `registry` provides feature names for the rate/selection maps; it must
/// be the registry the summary was produced with.
std::string SummaryToJson(const Summary& summary,
                          const FeatureRegistry& registry);

}  // namespace stmaker

#endif  // STMAKER_IO_SUMMARY_JSON_H_
