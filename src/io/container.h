#ifndef STMAKER_IO_CONTAINER_H_
#define STMAKER_IO_CONTAINER_H_

/// \file
/// \brief Single-file binary model container: fixed header, section table,
/// fixed-width little-endian records, per-section CRC32, 64-byte alignment.
///
/// The container replaces the ~7 loose model CSVs with one file the server
/// can `mmap` and serve from directly: the road network's CSR adjacency,
/// edge geometry/endpoint arrays, the CH hierarchy, landmark table, trip
/// descriptors, and calibration stats live as fixed-width records that are
/// valid in-memory representations — no parse, no heap copy of the big
/// arrays. The byte-level layout (every offset, width, and CRC rule) is
/// specified in docs/FORMAT.md; this header is its executable twin.
///
/// Layering: this module knows bytes, sections, and CRCs — not model
/// semantics. The writer (`ContainerWriter`) assembles sections and writes
/// the file atomically; the reader (`MappedContainer`) maps the file,
/// validates structure (magic, version, header CRC, section-table bounds
/// and alignment), and exposes typed spans. Whether a damaged section is
/// fatal or advisory is the caller's decision (src/core/
/// stmaker_container_io.cc), mirroring the CSV manifest policy.

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace stmaker {

/// Identifies what a section's records mean. Values are part of the wire
/// format (FORMAT.md §3) and must never be renumbered; add new sections at
/// the end. Readers skip unknown types (forward compatibility).
enum class SectionType : uint32_t {
  kMeta = 1,              ///< One MetaRecord: counts, flags, index geometry.
  kFeatureNames = 2,      ///< Blob: ";"-joined feature registry ids.
  kNodes = 3,             ///< NodeRecord per road node (ids implicit/dense).
  kEdges = 4,             ///< EdgeRecord per road edge.
  kEdgeNames = 5,         ///< Blob: concatenated edge name bytes.
  kCsrOffsets = 6,        ///< uint32_t per node + 1 (CSR row starts).
  kCsrEntries = 7,        ///< CsrEntryRecord per directed adjacency entry.
  kEdgeGeom = 8,          ///< EdgeGeomRecord per edge (endpoint positions).
  kEdgeEnds = 9,          ///< EdgeEndsRecord per edge (32-bit endpoints).
  kLandmarks = 10,        ///< LandmarkRecord per landmark (with significance).
  kLandmarkNames = 11,    ///< Blob: concatenated landmark name bytes.
  kTransitions = 12,      ///< TransitionRecord per mined transition.
  kFeatureEdges = 13,     ///< Variable-width: (from,to,count,sums[F]) rows.
  kVisits = 14,           ///< VisitRecord per visit-corpus entry.
  kTripDescriptors = 15,  ///< TripDescRecord per corpus trip.
  kTripCells = 16,        ///< TripCellRecord: all trips' (cell,bucket) visits.
  kTripLabels = 17,       ///< int64_t: all trips' landmark labels.
  kTripFingerprints = 18, ///< double: num_trips x num_features, row-major.
  kChRank = 19,           ///< uint32_t per node: contraction rank.
  kChArcs = 20,           ///< ChArcRecord per CH arc (originals + shortcuts).
  kStats = 21,            ///< double: [global_count, global_sum[0..F-1]].
};

/// Current writer format version. Readers accept files with
/// `format_version` <= this value and reject newer files (FORMAT.md §6).
inline constexpr uint32_t kContainerFormatVersion = 1;

/// The 8 magic bytes at offset 0 of every container file.
inline constexpr char kContainerMagic[8] = {'S', 'T', 'M', 'K',
                                            'C', 'T', 'R', '1'};

/// Payload alignment: every section's `offset` is a multiple of this, so
/// mapped records of any scalar width are naturally aligned and each
/// section starts on its own cache line. Gaps are zero-filled.
inline constexpr uint64_t kContainerAlignment = 64;

#pragma pack(push, 1)

/// Fixed 64-byte file header at offset 0 (FORMAT.md §2). All integers
/// little-endian; the container format is little-endian only.
struct ContainerHeader {
  char magic[8];           ///< kContainerMagic.
  uint32_t format_version; ///< kContainerFormatVersion when written.
  uint32_t flags;          ///< Reserved, 0.
  uint32_t section_count;  ///< Entries in the section table.
  uint32_t header_crc32;   ///< CRC32 of header (this field zeroed) + table.
  uint64_t file_bytes;     ///< Total file size, for truncation detection.
  uint8_t reserved[32];    ///< Zero.
};
static_assert(sizeof(ContainerHeader) == 64, "header layout is frozen");

/// One 64-byte section-table entry; the table follows the header
/// immediately (FORMAT.md §3).
struct SectionEntry {
  uint32_t type;         ///< SectionType value (unknown types are skipped).
  uint32_t version;      ///< Per-section record-layout version (1 today).
  uint32_t record_width; ///< Bytes per record; 1 for blobs.
  uint32_t crc32;        ///< CRC32 over exactly [offset, offset + bytes).
  uint64_t offset;       ///< From file start; multiple of kContainerAlignment.
  uint64_t bytes;        ///< Payload length (record_width * record_count).
  uint64_t record_count; ///< Number of records.
  uint8_t reserved[24];  ///< Zero.
};
static_assert(sizeof(SectionEntry) == 64, "section entry layout is frozen");

/// kMeta payload: one record of counts and flags that lets a reader size
/// and cross-check every other section before touching it.
struct ContainerMetaRecord {
  uint64_t num_features;     ///< Feature registry size F.
  uint64_t num_trained;      ///< Trajectories the model was trained on.
  uint64_t num_nodes;        ///< Road nodes.
  uint64_t num_edges;        ///< Road edges.
  uint64_t num_landmarks;    ///< Landmarks (POI clusters + turning points).
  uint64_t num_transitions;  ///< Mined popular-route transitions.
  uint64_t num_feature_edges;///< Historical feature map entries.
  uint64_t num_visits;       ///< Visit-corpus records.
  uint64_t num_trips;        ///< Trip descriptors (0 when index absent).
  uint64_t ch_num_edges;     ///< CH: network edge count at build time.
  uint64_t ch_num_shortcuts; ///< CH: shortcut arc count.
  uint32_t has_hierarchy;    ///< 1 when kChRank/kChArcs are meaningful.
  uint32_t has_index;        ///< 1 when the kTrip* sections are meaningful.
  double index_cell_m;       ///< Trajectory-index grid cell (meters).
  double index_bucket_s;     ///< Trajectory-index time bucket (seconds).
  double landmark_cell_m;    ///< Landmark grid-index cell (meters).
};
static_assert(sizeof(ContainerMetaRecord) == 120, "meta layout is frozen");

/// kNodes record: node position; ids are dense and implicit (record i is
/// node i). `is_turning_point` is derived state, recomputed on load.
struct NodeRecord {
  double x;
  double y;
};
static_assert(sizeof(NodeRecord) == 16, "node record layout is frozen");

/// kEdges record: everything of RoadEdge except derived length (recomputed
/// from endpoints on load) and the name (stored in the kEdgeNames blob).
struct EdgeRecord {
  int64_t from;
  int64_t to;
  uint32_t grade;       ///< RoadGrade numeric value.
  uint32_t direction;   ///< TrafficDirection numeric value.
  double width_m;
  double cost_bias;
  uint64_t name_offset; ///< Byte offset into kEdgeNames.
  uint64_t name_len;    ///< Byte length in kEdgeNames.
};
static_assert(sizeof(EdgeRecord) == 56, "edge record layout is frozen");

/// kCsrEntries record: a RoadNetwork::Adjacency with its padding pinned to
/// zero. Matches the in-memory layout so the mapped array is served as-is.
struct CsrEntryRecord {
  int64_t edge;
  int64_t neighbor;
  uint8_t forward;     ///< 0 or 1.
  uint8_t pad[7];      ///< Zero.
};
static_assert(sizeof(CsrEntryRecord) == 24, "csr entry layout is frozen");

/// kEdgeGeom record: endpoint positions (RoadNetwork::EdgeGeometry).
struct EdgeGeomRecord {
  double ax, ay, bx, by;
};
static_assert(sizeof(EdgeGeomRecord) == 32, "edge geom layout is frozen");

/// kEdgeEnds record: 32-bit endpoint ids (RoadNetwork::EdgeEndpoints).
struct EdgeEndsRecord {
  int32_t from;
  int32_t to;
};
static_assert(sizeof(EdgeEndsRecord) == 8, "edge ends layout is frozen");

/// kLandmarks record; ids are dense and implicit. Names live in the
/// kLandmarkNames blob.
struct LandmarkRecord {
  double x;
  double y;
  double significance;
  int64_t network_node; ///< Turning-point node id, -1 for POI landmarks.
  uint64_t name_offset; ///< Byte offset into kLandmarkNames.
  uint64_t name_len;    ///< Byte length in kLandmarkNames.
  uint32_t kind;        ///< LandmarkKind numeric value.
  uint32_t pad;         ///< Zero.
};
static_assert(sizeof(LandmarkRecord) == 56, "landmark layout is frozen");

/// kTransitions record: one popular-route transition count.
struct TransitionRecord {
  int64_t from;
  int64_t to;
  double count;
};
static_assert(sizeof(TransitionRecord) == 24, "transition layout is frozen");

/// kVisits record: one visit-corpus entry.
struct VisitRecord {
  int64_t key;
  int64_t landmark;
  double count;
};
static_assert(sizeof(VisitRecord) == 24, "visit layout is frozen");

/// kTripDescriptors record. Variable-length members (cell visits, labels,
/// fingerprint) live in the kTripCells/kTripLabels/kTripFingerprints
/// sections, addressed by the begin/count pairs here.
struct TripDescRecord {
  uint32_t trip;
  uint8_t spatial;      ///< 0 or 1.
  uint8_t scored;       ///< 0 or 1.
  uint16_t pad;         ///< Zero.
  double min_x, min_y, max_x, max_y; ///< Bounding box.
  double t_begin, t_end;
  uint64_t cells_begin; ///< First record in kTripCells.
  uint64_t cells_count;
  uint64_t labels_begin; ///< First record in kTripLabels.
  uint64_t labels_count;
};
static_assert(sizeof(TripDescRecord) == 88, "trip desc layout is frozen");

/// kTripCells record: one (grid cell, time bucket) visit.
struct TripCellRecord {
  uint64_t cell;
  int64_t bucket;
};
static_assert(sizeof(TripCellRecord) == 16, "trip cell layout is frozen");

/// kChArcs record: a ContractionHierarchy::Arc (layout matches exactly, so
/// the array round-trips by memcpy).
struct ChArcRecord {
  int64_t from;
  int64_t to;
  double weight;
  int64_t edge;    ///< Original edge id, -1 for shortcuts.
  int32_t left;    ///< Left child arc index, -1 for originals.
  int32_t right;   ///< Right child arc index, -1 for originals.
};
static_assert(sizeof(ChArcRecord) == 40, "ch arc layout is frozen");

#pragma pack(pop)

/// \brief Assembles a container file: sections are appended in call order,
/// each payload 64-byte aligned and CRC'd, then Finish() writes the header,
/// section table, and payloads atomically (temp file + rename).
///
/// The writer is deliberately dumb: callers hand it fully serialized
/// payload bytes (with struct padding already zeroed — see
/// stmaker_container_io.cc's packers), so identical model state always
/// produces a byte-identical file.
class ContainerWriter {
 public:
  /// Appends one section. `record_width` must divide `payload.size()`
  /// evenly (pass 1 for blobs); the record count is derived.
  /// \param type The section's SectionType.
  /// \param version Record-layout version stored in the entry (1 today).
  /// \param record_width Bytes per record; must be > 0.
  /// \param payload The raw section bytes (moved in).
  void AddSection(SectionType type, uint32_t version, uint32_t record_width,
                  std::string payload);

  /// Serializes the container to a byte string (header + table + aligned
  /// payloads). Leaves the writer empty.
  /// \return The complete file image.
  std::string FinishToString();

  /// FinishToString() + WriteFileAtomic(path).
  /// \param path Destination file path.
  /// \return OK, or the write/rename error.
  Status Finish(const std::string& path);

 private:
  struct PendingSection {
    SectionType type;
    uint32_t version;
    uint32_t record_width;
    std::string payload;
  };
  std::vector<PendingSection> sections_;
};

/// \brief A validated, read-only view of a container file, backed by an
/// `mmap` (or an aligned heap buffer when mapping fails — failpoint
/// "container/map", counted by `container.map_fallbacks`).
///
/// Open() validates structure only — magic, version, header CRC, section
/// alignment/bounds, width×count consistency — in O(header + table), so a
/// cold start never parses the payloads. Per-section payload CRCs are
/// checked by the caller via VerifyCrc(), which decides fatal-vs-advisory
/// per section. The object must outlive every span handed out by
/// Records()/Blob(); ModelSnapshot pins it for exactly that reason.
class MappedContainer {
 public:
  MappedContainer(const MappedContainer&) = delete;
  MappedContainer& operator=(const MappedContainer&) = delete;
  ~MappedContainer();

  /// Maps and structurally validates `path`.
  /// \param path Container file to open.
  /// \return The container, or kIoError / kInvalidArgument /
  /// kFailedPrecondition (version skew) describing the rejection.
  static Result<std::shared_ptr<MappedContainer>> Open(
      const std::string& path);

  /// \return The validated file header.
  const ContainerHeader& header() const { return header_; }

  /// \return The section table, in file order.
  std::span<const SectionEntry> sections() const { return sections_; }

  /// \return The path the container was opened from (for error messages).
  const std::string& path() const { return path_; }

  /// \return True when the file bytes are heap-backed because mmap was
  /// unavailable (observability; behavior is identical).
  bool heap_backed() const { return heap_backed_; }

  /// Finds the first section of `type`.
  /// \param type The section type to look up.
  /// \return The entry, or nullptr when the file has no such section.
  const SectionEntry* Find(SectionType type) const;

  /// Recomputes a section's payload CRC32 and compares it to the table.
  /// \param entry An entry obtained from this container.
  /// \return True when the payload bytes are intact.
  bool VerifyCrc(const SectionEntry& entry) const;

  /// Raw payload bytes of a section (zero-copy view into the mapping).
  /// \param entry An entry obtained from this container.
  /// \return The [offset, offset+bytes) view.
  std::string_view Blob(const SectionEntry& entry) const;

  /// Typed record view of a section. Fails when the stored record width
  /// does not match `sizeof(T)` — the caller's struct disagrees with the
  /// file and reinterpreting would read garbage.
  /// \tparam T A trivially-copyable record struct (alignment <= 64).
  /// \param entry An entry obtained from this container.
  /// \return A span of `record_count` records aliasing the mapping.
  template <typename T>
  Result<std::span<const T>> Records(const SectionEntry& entry) const {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(alignof(T) <= kContainerAlignment);
    if (entry.record_width != sizeof(T)) {
      return Status::InvalidArgument(
          path_ + ": section type " + std::to_string(entry.type) +
          " has record width " + std::to_string(entry.record_width) +
          ", reader expects " + std::to_string(sizeof(T)));
    }
    return std::span<const T>(
        reinterpret_cast<const T*>(data_ + entry.offset),
        static_cast<size_t>(entry.record_count));
  }

 private:
  MappedContainer() = default;

  std::string path_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool heap_backed_ = false;
  void* map_base_ = nullptr;    ///< mmap base when mapped.
  size_t map_len_ = 0;
  std::unique_ptr<uint8_t[]> heap_; ///< Owning buffer when heap-backed.
  ContainerHeader header_{};
  std::vector<SectionEntry> sections_;
};

/// Sniffs whether `path` is a container file (exists, regular, and starts
/// with the 8 magic bytes). Lets `--model` accept either a CSV prefix or a
/// container path.
/// \param path Candidate file path.
/// \return True when the magic matches.
bool IsContainerFile(const std::string& path);

}  // namespace stmaker

#endif  // STMAKER_IO_CONTAINER_H_
