#include "io/json.h"

#include <cmath>

#include "common/strings.h"

namespace stmaker {

std::string JsonWriter::Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!need_comma_stack_.empty()) {
    if (need_comma_stack_.back() == '1') {
      out_ += ',';
    } else {
      need_comma_stack_.back() = '1';
    }
  }
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  need_comma_stack_ += '0';
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  if (!need_comma_stack_.empty()) need_comma_stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  need_comma_stack_ += '0';
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  if (!need_comma_stack_.empty()) need_comma_stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  MaybeComma();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  MaybeComma();
  if (std::isfinite(value)) {
    out_ += FormatNumber(value, 6);
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  return *this;
}

JsonWriter& JsonWriter::Int(long long value) {
  MaybeComma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  MaybeComma();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  MaybeComma();
  out_ += "null";
  return *this;
}

Result<bool> NdjsonReader::Next(std::string* line) {
  line->clear();
  std::streambuf* sb = in_->rdbuf();
  int ch;
  while ((ch = sb->sbumpc()) != std::char_traits<char>::eof()) {
    if (ch == '\n') {
      ++lines_read_;
      return true;
    }
    if (line->size() >= max_line_bytes_) {
      // Discard through the next newline so the stream re-syncs; the
      // buffer never grows past the cap no matter how long the line is.
      size_t discarded = line->size();
      line->clear();
      line->shrink_to_fit();
      while ((ch = sb->sbumpc()) != std::char_traits<char>::eof()) {
        ++discarded;
        if (ch == '\n') break;
      }
      ++oversized_lines_;
      return Status::InvalidArgument(
          StrFormat("NDJSON line exceeds %zu bytes (%zu read); line dropped",
                    max_line_bytes_, discarded));
    }
    line->push_back(static_cast<char>(ch));
  }
  if (!line->empty()) {
    // EOF in the middle of a line: the producer was cut off. Surfacing a
    // fragment as a request would half-process a truncated write.
    size_t partial = line->size();
    line->clear();
    return Status::InvalidArgument(StrFormat(
        "NDJSON stream ends mid-line (%zu bytes without a newline)",
        partial));
  }
  return false;
}

}  // namespace stmaker
