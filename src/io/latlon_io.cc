#include "io/latlon_io.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/csv.h"
#include "common/strings.h"

namespace stmaker {

namespace {

// Days from 1970-01-01 to y-m-d (proleptic Gregorian), via the classic
// civil-date algorithm (Howard Hinnant's days_from_civil).
int64_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153u * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

// Inverse (civil_from_days).
void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *d = doy - (153 * mp + 2) / 5 + 1;
  *m = mp + (mp < 10 ? 3 : -9);
  *y = static_cast<int>(yy + (*m <= 2));
}

Result<double> ParseDouble(const std::string& field) {
  char* end = nullptr;
  double v = std::strtod(field.c_str(), &end);
  if (end == field.c_str() || *end != '\0') {
    return Status::InvalidArgument("not a number: '" + field + "'");
  }
  return v;
}

}  // namespace

Result<double> ParsePaperTimestamp(const std::string& text) {
  int year = 0;
  int month = 0;
  int day = 0;
  int hour = 0;
  int minute = 0;
  int second = 0;
  char tail = '\0';
  int matched = std::sscanf(text.c_str(), "%4d%2d%2d %2d:%2d:%2d%c", &year,
                            &month, &day, &hour, &minute, &second, &tail);
  if (matched != 6) {
    return Status::InvalidArgument("bad timestamp (want YYYYMMDD HH:MM:SS): " +
                                   text);
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour < 0 ||
      hour > 23 || minute < 0 || minute > 59 || second < 0 || second > 60) {
    return Status::InvalidArgument("timestamp field out of range: " + text);
  }
  int64_t days = DaysFromCivil(year, month, day);
  return static_cast<double>(days) * kSecondsPerDay + hour * 3600.0 +
         minute * 60.0 + second;
}

std::string FormatPaperTimestamp(double absolute_seconds) {
  int64_t days = static_cast<int64_t>(
      std::floor(absolute_seconds / kSecondsPerDay));
  double tod = absolute_seconds - static_cast<double>(days) * kSecondsPerDay;
  int y;
  unsigned m;
  unsigned d;
  CivilFromDays(days, &y, &m, &d);
  int total = static_cast<int>(std::llround(tod));
  if (total >= 86400) total = 86399;  // guard rounding at midnight
  return StrFormat("%04d%02u%02u %02d:%02d:%02d", y, m, d, total / 3600,
                   (total % 3600) / 60, total % 60);
}

Status WriteLatLonTrajectoriesCsv(
    const std::string& path, const std::vector<RawTrajectory>& trajectories,
    const LocalProjection& projection) {
  STMAKER_ASSIGN_OR_RETURN(CsvWriter writer, CsvWriter::Open(path));
  STMAKER_RETURN_IF_ERROR(writer.WriteRow(
      {"trajectory_id", "latitude", "longitude", "timestamp"}));
  for (size_t t = 0; t < trajectories.size(); ++t) {
    for (const RawSample& s : trajectories[t].samples) {
      LatLon ll = projection.ToLatLon(s.pos);
      STMAKER_RETURN_IF_ERROR(writer.WriteRow(
          {std::to_string(t), StrFormat("%.6f", ll.lat),
           StrFormat("%.6f", ll.lon), FormatPaperTimestamp(s.time)}));
    }
  }
  return writer.Close();
}

Result<std::vector<RawTrajectory>> ReadLatLonTrajectoriesCsv(
    const std::string& path, const LocalProjection& projection) {
  STMAKER_ASSIGN_OR_RETURN(
      auto rows, ReadCsvTable(path, {"trajectory_id", "latitude", "longitude",
                                     "timestamp"}));
  std::vector<RawTrajectory> out;
  std::string current_id;
  bool have_current = false;
  for (size_t r = 0; r < rows.size(); ++r) {
    const auto& row = rows[r];
    STMAKER_ASSIGN_OR_RETURN(double lat, ParseDouble(row[1]));
    STMAKER_ASSIGN_OR_RETURN(double lon, ParseDouble(row[2]));
    STMAKER_ASSIGN_OR_RETURN(double time, ParsePaperTimestamp(row[3]));
    if (lat < -90 || lat > 90 || lon < -180 || lon > 180) {
      return Status::InvalidArgument(path + ": coordinate out of range in row " +
                                     std::to_string(r + 1));
    }
    if (!have_current || row[0] != current_id) {
      out.emplace_back();
      current_id = row[0];
      have_current = true;
    }
    out.back().samples.push_back({projection.ToXY({lat, lon}), time});
  }
  return out;
}

}  // namespace stmaker
