#ifndef STMAKER_IO_GEOJSON_H_
#define STMAKER_IO_GEOJSON_H_

/// \file
/// GeoJSON export of trajectories and summaries for map visualization.

#include <string>

#include "core/summary.h"
#include "geo/projection.h"
#include "landmark/landmark_index.h"
#include "traj/trajectory.h"

namespace stmaker {

/// \brief GeoJSON export for map visualization (geojson.io, Leaflet, QGIS).
///
/// Coordinates are converted from the local plane back to WGS-84 with the
/// supplied projection.

/// The raw trajectory as a FeatureCollection holding one LineString with
/// `start_time`/`end_time` properties.
std::string TrajectoryToGeoJson(const RawTrajectory& trajectory,
                                const LocalProjection& projection);

/// A summary as a FeatureCollection: one Point per partition-boundary
/// landmark (name, significance, and the partition sentence on the source
/// point) plus one LineString per partition drawn through its landmark
/// chain, carrying the sentence and the selected feature ids.
std::string SummaryToGeoJson(const Summary& summary,
                             const LandmarkIndex& landmarks,
                             const LocalProjection& projection);

}  // namespace stmaker

#endif  // STMAKER_IO_GEOJSON_H_
