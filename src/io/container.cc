#include "io/container.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/crc32.h"
#include "common/failpoint.h"
#include "common/fileutil.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace stmaker {

static_assert(std::endian::native == std::endian::little,
              "the container format is little-endian only; a big-endian "
              "port needs byte-swapping readers");

namespace {

/// Pads `out` with zero bytes up to the next kContainerAlignment boundary.
void PadToAlignment(std::string* out) {
  const size_t rem = out->size() % kContainerAlignment;
  if (rem != 0) out->append(kContainerAlignment - rem, '\0');
}

std::string_view AsView(const void* p, size_t n) {
  return std::string_view(static_cast<const char*>(p), n);
}

/// CRC over the header (with header_crc32 zeroed) continued over the raw
/// section table — the coverage rule of FORMAT.md §4.
uint32_t HeaderCrc(ContainerHeader header,
                   std::span<const SectionEntry> table) {
  header.header_crc32 = 0;
  uint32_t crc = Crc32(AsView(&header, sizeof(header)));
  if (!table.empty()) {
    crc = Crc32(AsView(table.data(), table.size() * sizeof(SectionEntry)),
                crc);
  }
  return crc;
}

}  // namespace

void ContainerWriter::AddSection(SectionType type, uint32_t version,
                                 uint32_t record_width,
                                 std::string payload) {
  PendingSection s;
  s.type = type;
  s.version = version;
  s.record_width = record_width;
  s.payload = std::move(payload);
  sections_.push_back(std::move(s));
}

std::string ContainerWriter::FinishToString() {
  ContainerHeader header{};
  std::memcpy(header.magic, kContainerMagic, sizeof(header.magic));
  header.format_version = kContainerFormatVersion;
  header.flags = 0;
  header.section_count = static_cast<uint32_t>(sections_.size());

  std::vector<SectionEntry> table(sections_.size());
  std::string body;  // payloads, offsets relative to file start
  uint64_t cursor = sizeof(ContainerHeader) +
                    sections_.size() * sizeof(SectionEntry);
  // The payload area itself starts aligned.
  const uint64_t body_start =
      (cursor + kContainerAlignment - 1) / kContainerAlignment *
      kContainerAlignment;
  body.append(static_cast<size_t>(body_start - cursor), '\0');
  cursor = body_start;

  for (size_t i = 0; i < sections_.size(); ++i) {
    const PendingSection& s = sections_[i];
    SectionEntry& e = table[i];
    std::memset(&e, 0, sizeof(e));
    e.type = static_cast<uint32_t>(s.type);
    e.version = s.version;
    e.record_width = s.record_width;
    e.offset = cursor;
    e.bytes = s.payload.size();
    e.record_count =
        s.record_width == 0 ? 0 : s.payload.size() / s.record_width;
    e.crc32 = Crc32(s.payload);
    body += s.payload;
    cursor += s.payload.size();
    const uint64_t aligned =
        (cursor + kContainerAlignment - 1) / kContainerAlignment *
        kContainerAlignment;
    body.append(static_cast<size_t>(aligned - cursor), '\0');
    cursor = aligned;
  }

  header.file_bytes = sizeof(ContainerHeader) +
                      table.size() * sizeof(SectionEntry) + body.size();
  header.header_crc32 = HeaderCrc(header, table);

  std::string out;
  out.reserve(static_cast<size_t>(header.file_bytes));
  out.append(AsView(&header, sizeof(header)));
  if (!table.empty()) {
    out.append(AsView(table.data(), table.size() * sizeof(SectionEntry)));
  }
  out += body;
  sections_.clear();
  return out;
}

Status ContainerWriter::Finish(const std::string& path) {
  return WriteFileAtomic(path, FinishToString());
}

MappedContainer::~MappedContainer() {
  if (map_base_ != nullptr) ::munmap(map_base_, map_len_);
}

Result<std::shared_ptr<MappedContainer>> MappedContainer::Open(
    const std::string& path) {
  static Counter& map_fallbacks =
      MetricsRegistry::Global().counter("container.map_fallbacks");

  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError(path + ": open failed: " +
                           std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError(path + ": not a regular file");
  }
  const size_t size = static_cast<size_t>(st.st_size);

  std::shared_ptr<MappedContainer> c(new MappedContainer());
  c->path_ = path;
  c->size_ = size;

  bool map_denied = false;
  STMAKER_FAILPOINT("container/map", map_denied = true);
  if (!map_denied && size > 0) {
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      c->map_base_ = base;
      c->map_len_ = size;
      c->data_ = static_cast<const uint8_t*>(base);
    } else {
      map_denied = true;
    }
  }
  if (c->data_ == nullptr && size > 0) {
    // mmap unavailable (failpoint or a genuine ENOMEM/ENODEV): fall back
    // to an aligned heap buffer so the caller sees identical behavior,
    // just without the page-cache sharing. Counted for observability.
    std::fprintf(stderr,
                 "stmaker: warning: mmap of %s unavailable, loading the "
                 "container into a heap buffer\n",
                 path.c_str());
    map_fallbacks.Increment();
    auto buf = std::make_unique<uint8_t[]>(size);
    size_t done = 0;
    while (done < size) {
      ssize_t n = ::read(fd, buf.get() + done, size - done);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        ::close(fd);
        return Status::IoError(path + ": short read at " +
                               std::to_string(done));
      }
      done += static_cast<size_t>(n);
    }
    c->heap_ = std::move(buf);
    c->heap_backed_ = true;
    c->data_ = c->heap_.get();
  }
  ::close(fd);

  // Structural validation: everything below is O(header + section table).
  if (size < sizeof(ContainerHeader)) {
    return Status::InvalidArgument(path + ": too small to be a container (" +
                                   std::to_string(size) + " bytes)");
  }
  std::memcpy(&c->header_, c->data_, sizeof(ContainerHeader));
  const ContainerHeader& h = c->header_;
  if (std::memcmp(h.magic, kContainerMagic, sizeof(kContainerMagic)) != 0) {
    return Status::InvalidArgument(path + ": bad magic, not a model "
                                          "container");
  }
  if (h.format_version == 0 ||
      h.format_version > kContainerFormatVersion) {
    return Status::FailedPrecondition(StrFormat(
        "%s: container format version %u is newer than this reader "
        "(max %u); upgrade the server or re-pack the model",
        path.c_str(), h.format_version, kContainerFormatVersion));
  }
  if (h.file_bytes != size) {
    return Status::InvalidArgument(StrFormat(
        "%s: header declares %llu bytes but the file has %zu (truncated "
        "or grown)",
        path.c_str(), static_cast<unsigned long long>(h.file_bytes), size));
  }
  const uint64_t table_bytes =
      static_cast<uint64_t>(h.section_count) * sizeof(SectionEntry);
  if (h.section_count > 4096 ||
      sizeof(ContainerHeader) + table_bytes > size) {
    return Status::InvalidArgument(
        path + ": section table does not fit the file");
  }
  c->sections_.resize(h.section_count);
  if (h.section_count > 0) {
    std::memcpy(c->sections_.data(), c->data_ + sizeof(ContainerHeader),
                static_cast<size_t>(table_bytes));
  }
  if (HeaderCrc(h, c->sections_) != h.header_crc32) {
    return Status::InvalidArgument(
        path + ": header/section-table CRC mismatch (corrupt file)");
  }
  const uint64_t payload_floor = sizeof(ContainerHeader) + table_bytes;
  for (const SectionEntry& e : c->sections_) {
    if (e.offset % kContainerAlignment != 0) {
      return Status::InvalidArgument(StrFormat(
          "%s: section type %u at offset %llu is not %llu-byte aligned",
          path.c_str(), e.type, static_cast<unsigned long long>(e.offset),
          static_cast<unsigned long long>(kContainerAlignment)));
    }
    if (e.offset < payload_floor || e.bytes > size ||
        e.offset > size - e.bytes) {
      return Status::InvalidArgument(StrFormat(
          "%s: section type %u [%llu, +%llu) is out of the file's bounds",
          path.c_str(), e.type, static_cast<unsigned long long>(e.offset),
          static_cast<unsigned long long>(e.bytes)));
    }
    if (e.record_width == 0 ||
        e.record_count != e.bytes / e.record_width ||
        e.record_count * static_cast<uint64_t>(e.record_width) != e.bytes) {
      return Status::InvalidArgument(StrFormat(
          "%s: section type %u record geometry is inconsistent "
          "(width %u, count %llu, bytes %llu)",
          path.c_str(), e.type, e.record_width,
          static_cast<unsigned long long>(e.record_count),
          static_cast<unsigned long long>(e.bytes)));
    }
  }
  return c;
}

const SectionEntry* MappedContainer::Find(SectionType type) const {
  for (const SectionEntry& e : sections_) {
    if (e.type == static_cast<uint32_t>(type)) return &e;
  }
  return nullptr;
}

bool MappedContainer::VerifyCrc(const SectionEntry& entry) const {
  return Crc32(Blob(entry)) == entry.crc32;
}

std::string_view MappedContainer::Blob(const SectionEntry& entry) const {
  return AsView(data_ + entry.offset, static_cast<size_t>(entry.bytes));
}

bool IsContainerFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char magic[sizeof(kContainerMagic)];
  const size_t n = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  return n == sizeof(magic) &&
         std::memcmp(magic, kContainerMagic, sizeof(magic)) == 0;
}

}  // namespace stmaker
