#ifndef STMAKER_IO_POI_IO_H_
#define STMAKER_IO_POI_IO_H_

/// \file
/// CSV persistence for POI datasets.

#include <string>
#include <vector>

#include "common/status.h"
#include "landmark/poi_generator.h"

namespace stmaker {

/// CSV persistence for raw POI datasets: `x,y,name` with a header row. The
/// landmark index is cheap to rebuild, so only the raw POIs are stored.
Status WritePoisCsv(const std::string& path, const std::vector<RawPoi>& pois);

/// Reads a POI dataset written by WritePoisCsv.
Result<std::vector<RawPoi>> ReadPoisCsv(const std::string& path);

}  // namespace stmaker

#endif  // STMAKER_IO_POI_IO_H_
