#ifndef STMAKER_IO_TRAJECTORY_IO_H_
#define STMAKER_IO_TRAJECTORY_IO_H_

/// \file
/// CSV persistence for raw trajectory corpora.

#include <string>
#include <vector>

#include "common/status.h"
#include "traj/trajectory.h"

namespace stmaker {

/// \brief CSV persistence for raw trajectory corpora.
///
/// Format (one fix per row, header included):
///   trajectory_id,traveler,x,y,time
/// with positions in projected meters and time in absolute seconds.
/// Trajectories are grouped by contiguous runs of trajectory_id; ids need
/// not be dense but must not interleave.
Status WriteTrajectoriesCsv(const std::string& path,
                            const std::vector<RawTrajectory>& trajectories);

/// Reads a corpus written by WriteTrajectoriesCsv. Fails on malformed rows,
/// missing header, non-numeric fields, or interleaved trajectory ids.
Result<std::vector<RawTrajectory>> ReadTrajectoriesCsv(
    const std::string& path);

}  // namespace stmaker

#endif  // STMAKER_IO_TRAJECTORY_IO_H_
