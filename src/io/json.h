#ifndef STMAKER_IO_JSON_H_
#define STMAKER_IO_JSON_H_

/// \file
/// Minimal streaming JSON emitter.

#include <string>

namespace stmaker {

/// \brief Minimal streaming JSON emitter.
///
/// Produces compact, valid JSON; the caller drives structure with
/// BeginObject/BeginArray and Key/value calls, and the emitter handles
/// commas and string escaping. No validation of call order is attempted
/// beyond what the comma logic needs — this is an output-only utility for
/// serializing summaries and bench results.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(long long value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document so far.
  const std::string& str() const { return out_; }

  /// Escapes a string for inclusion in a JSON document (without the
  /// surrounding quotes).
  static std::string Escape(const std::string& raw);

 private:
  void MaybeComma();

  std::string out_;
  /// Whether a comma is needed before the next value at the current
  /// nesting level; one bit per level, topmost = current.
  std::string need_comma_stack_;
  bool after_key_ = false;
};

}  // namespace stmaker

#endif  // STMAKER_IO_JSON_H_
