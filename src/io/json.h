#ifndef STMAKER_IO_JSON_H_
#define STMAKER_IO_JSON_H_

/// \file
/// Minimal streaming JSON emitter and a bounded NDJSON line reader.

#include <cstddef>
#include <istream>
#include <string>

#include "common/status.h"

namespace stmaker {

/// \brief Minimal streaming JSON emitter.
///
/// Produces compact, valid JSON; the caller drives structure with
/// BeginObject/BeginArray and Key/value calls, and the emitter handles
/// commas and string escaping. No validation of call order is attempted
/// beyond what the comma logic needs — this is an output-only utility for
/// serializing summaries and bench results.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(long long value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// The document so far.
  const std::string& str() const { return out_; }

  /// Escapes a string for inclusion in a JSON document (without the
  /// surrounding quotes).
  static std::string Escape(const std::string& raw);

 private:
  void MaybeComma();

  std::string out_;
  /// Whether a comma is needed before the next value at the current
  /// nesting level; one bit per level, topmost = current.
  std::string need_comma_stack_;
  bool after_key_ = false;
};

/// \brief Bounded reader for newline-delimited JSON (NDJSON) streams.
///
/// Replaces the bare `std::getline` in serve-style loops: a client (or a
/// corrupted file) that sends a multi-megabyte line without a newline must
/// not grow an unbounded buffer. Lines longer than `max_line_bytes` are
/// rejected with kInvalidArgument and *discarded in bounded chunks* through
/// the next newline, so the stream re-synchronizes and subsequent lines
/// still parse. A final line cut off by EOF without its terminator is also
/// rejected — a truncated request must never be half-processed.
class NdjsonReader {
 public:
  /// Matches the TCP front-end's per-connection line cap.
  static constexpr size_t kDefaultMaxLineBytes = 1 << 20;

  /// Reads from `in` (not owned; must outlive the reader).
  explicit NdjsonReader(std::istream* in,
                        size_t max_line_bytes = kDefaultMaxLineBytes)
      : in_(in), max_line_bytes_(max_line_bytes) {}

  /// Fetches the next line (newline stripped) into *line. Returns true on
  /// a line, false at clean EOF, kInvalidArgument for an oversized line
  /// (stream advanced past it) or an unterminated final line.
  Result<bool> Next(std::string* line);

  /// Completed lines returned so far.
  size_t lines_read() const { return lines_read_; }
  /// Oversized lines rejected and skipped so far.
  size_t oversized_lines() const { return oversized_lines_; }

 private:
  std::istream* in_;
  size_t max_line_bytes_;
  size_t lines_read_ = 0;
  size_t oversized_lines_ = 0;
};

}  // namespace stmaker

#endif  // STMAKER_IO_JSON_H_
