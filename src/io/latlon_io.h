#ifndef STMAKER_IO_LATLON_IO_H_
#define STMAKER_IO_LATLON_IO_H_

/// \file
/// Ingestion of trajectories in the paper's Table I database format.

#include <string>
#include <vector>

#include "common/status.h"
#include "geo/projection.h"
#include "traj/trajectory.h"

namespace stmaker {

/// \brief Ingestion of trajectories in the paper's Table I database format:
/// rows of ⟨latitude, longitude, "YYYYMMDD HH:MM:SS"⟩.
///
/// The reader projects coordinates into the local plane with the supplied
/// projection, so the result feeds straight into calibration; the writer is
/// the inverse.

/// Parses "YYYYMMDD HH:MM:SS" into absolute seconds (days since 1970-01-01
/// via a proleptic Gregorian day count × 86400, plus the time of day). No
/// time zones — trajectory analysis only needs consistent local time.
Result<double> ParsePaperTimestamp(const std::string& text);

/// Inverse of ParsePaperTimestamp.
std::string FormatPaperTimestamp(double absolute_seconds);

/// One trajectory per contiguous run of trajectory_id, as in
/// WriteTrajectoriesCsv, but with columns
/// `trajectory_id,latitude,longitude,timestamp`.
Status WriteLatLonTrajectoriesCsv(
    const std::string& path, const std::vector<RawTrajectory>& trajectories,
    const LocalProjection& projection);

/// Reads trajectories written by WriteLatLonTrajectoriesCsv (or exported
/// from a GPS log in the same schema), projecting into the local plane.
Result<std::vector<RawTrajectory>> ReadLatLonTrajectoriesCsv(
    const std::string& path, const LocalProjection& projection);

}  // namespace stmaker

#endif  // STMAKER_IO_LATLON_IO_H_
