#ifndef STMAKER_NET_NDJSON_SERVICE_H_
#define STMAKER_NET_NDJSON_SERVICE_H_

/// \file
/// \brief Transport-independent NDJSON request processor for serve mode.
///
/// NdjsonService is the protocol brain shared by every serve front-end:
/// the stdin/stdout loop, the epoll TCP server (net/server.h), and the
/// in-process SLO bench all feed request lines into HandleLine() and get
/// byte-identical response lines back — the golden-over-TCP test pins
/// this. One service instance owns the worker pool, the bounded-admission
/// gate (`max_inflight`), per-request deadlines measured from admission,
/// and the watchdog thread that cancels requests running past their
/// deadline (DESIGN.md §10, §14).
///
/// Request protocol (one flat JSON object per line; values are numbers,
/// plus string values for admin verbs):
///   {"id": 1, "trip": 3, "k": 2, "eta": 0.3, "deadline_ms": 250,
///    "max_expansions": 10000}           -> summarize (async, via the pool)
///   {"id": 5, "route": 1, "src": 12, "dst": 977}  -> road route (sync)
///   {"id": 7, "stats": 1}                         -> metrics snapshot (sync)
///   {"id": 9, "reload": 1, "model_dir": "path/prefix"}  -> model reload
///       (async; the response fires when the reload actually ran)
///   {"id": 11, "similar": 1, "trip": 3, "k": 5, "deadline_ms": 250}
///       -> top-k similar historical trips (async, via the pool): index
///          candidate generation + exact Eq. 3 cosine re-rank, ties by
///          ascending trip id (DESIGN.md §16)
///   {"id": 13, "query": 1, "bbox": "x0,y0,x1,y1", "window": "t0,t1"}
///       -> region/time-window retrieval (async): ascending ids of trips
///          with a fix inside the box during the (optional) window
///
/// Responses carry the request id and a wire status
/// ("ok"/"deadline_exceeded"/"resource_exhausted"/...); overload is shed
/// deterministically at admission with "resource_exhausted".
///
/// Model lifecycle: constructed over a ModelManager, the service pins the
/// current ModelSnapshot once per request at admission (Pin()) and carries
/// that shared_ptr through the request's whole lifetime — a concurrent
/// snapshot swap can never leave a request reading a half-loaded or
/// mixed-version model, and every "ok" response echoes the
/// `model_version` it was served from. The legacy fixed-model constructor
/// (bench, unit tests) skips pinning and omits `model_version`.

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/context.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/status.h"
#include "core/model_manager.h"
#include "core/stmaker.h"

namespace stmaker::net {

/// Serving knobs, mirroring the `stmaker_cli serve` flags.
struct NdjsonServiceOptions {
  /// Worker threads for summarize requests.
  int threads = 1;
  /// Default per-request deadline (ms) when the request carries none;
  /// 0 = none, negative = deterministically already expired.
  long default_deadline_ms = 0;
  /// Bounded admission: requests beyond this many in flight are rejected
  /// with resource_exhausted instead of queueing without bound.
  long max_inflight = 64;
  /// Default node-expansion budget for route searches (0 = unlimited).
  long max_expansions = 0;
};

/// See the file comment. Thread-safe: HandleLine may be called from many
/// transport threads at once.
class NdjsonService {
 public:
  /// Delivers one response line (no trailing newline). May be invoked on
  /// the calling thread (stats/route/errors) or later on a worker thread
  /// (summaries) — transports must tolerate both.
  using ResponseFn = std::function<void(std::string line)>;

  /// `maker` must be trained/loaded; `corpus` backs the "trip" field.
  /// Neither is owned; both must outlive the service. This fixed-model
  /// form serves one immutable model: `reload` requests are rejected with
  /// failed_precondition and responses carry no `model_version`.
  NdjsonService(STMaker* maker, const std::vector<RawTrajectory>* corpus,
                const NdjsonServiceOptions& options);

  /// Snapshot-serving form: every request pins `manager->Current()` at
  /// admission and the `reload` admin verb is live. `manager` must be
  /// Initialize()d already and must outlive the service's in-flight
  /// requests; reload callbacks the manager may still fire after this
  /// service is gone touch only the transport's ResponseFn (safe — see
  /// HandleReload).
  NdjsonService(ModelManager* manager, const NdjsonServiceOptions& options);

  /// Drains and stops the watchdog.
  ~NdjsonService();

  NdjsonService(const NdjsonService&) = delete;
  NdjsonService& operator=(const NdjsonService&) = delete;

  /// Processes one request line; `respond` fires exactly once.
  void HandleLine(const std::string& line, ResponseFn respond);

  /// Blocks until every admitted request has finished and responded.
  void Drain();

  /// Appends one NDJSON span tree per summarize request to `file` (not
  /// owned; pass nullptr to disable). Call before serving traffic.
  void set_trace_log(std::FILE* file) { trace_log_ = file; }

  /// Admission totals from the worker pool (for the shutdown report).
  size_t pool_admitted() const { return pool_.admitted(); }
  size_t pool_rejected() const { return pool_.rejected(); }

  // --- wire-format helpers (shared with transports and tests) ---------------

  /// JSON string escaping for response lines (control chars, quote,
  /// backslash).
  static std::string JsonEscape(const std::string& text);

  /// Wire name of a status category ("deadline_exceeded", "ok", ...).
  static std::string WireStatusName(StatusCode code);

  /// One parsed request line, split by value type. The serve protocol is
  /// flat: numbers for the query fields, strings only for admin verbs
  /// (`model_dir`).
  struct FlatJson {
    std::map<std::string, double> numbers;
    std::map<std::string, std::string> strings;
  };

  /// Parses one request line: a flat JSON object whose values are numbers
  /// or strings (with the usual backslash escapes). A hand-rolled scanner
  /// keeps the serving path dependency-free.
  static Result<FlatJson> ParseFlatJson(const std::string& line);

  /// ParseFlatJson restricted to all-numeric values; any string field is
  /// an InvalidArgument. Kept for the protocol's query-path callers.
  static Result<std::map<std::string, double>> ParseFlatJsonNumbers(
      const std::string& line);

  /// Renders the uniform error/status response line.
  static std::string ErrorResponse(long id, const Status& status);

 private:
  /// One admitted request being tracked by the watchdog.
  struct InflightRequest {
    long id = 0;
    RequestContext::Clock::time_point deadline;
    CancelSource cancel;
  };

  /// The model one request is served from, resolved once at admission.
  /// `snapshot` (null in fixed-model mode) keeps the whole bundle alive
  /// for the request's lifetime — the pin that makes the swap safe.
  struct PinnedModel {
    STMaker* maker = nullptr;
    const std::vector<RawTrajectory>* corpus = nullptr;
    uint64_t version = 0;
    std::shared_ptr<const ModelSnapshot> snapshot;
  };

  /// Resolves the serving model for one request (see PinnedModel).
  PinnedModel Pin() const;

  void WatchdogMain();
  void MirrorCacheGauges(STMaker* maker);
  void HandleStats(long id, const PinnedModel& model,
                   const ResponseFn& respond);
  void HandleRoute(long id, const PinnedModel& model,
                   const std::map<std::string, double>& fields,
                   const ResponseFn& respond);
  void HandleSummarize(long id, PinnedModel model,
                       const std::map<std::string, double>& fields,
                       ResponseFn respond);
  void HandleSimilar(long id, PinnedModel model,
                     const std::map<std::string, double>& fields,
                     ResponseFn respond);
  void HandleQuery(long id, PinnedModel model, const FlatJson& fields,
                   ResponseFn respond);
  void HandleReload(long id, const FlatJson& fields, ResponseFn respond);

  /// Shared admission for the async (pool-served) verbs: builds the
  /// request context from the wire fields, registers the request with the
  /// watchdog, and submits `body` under the `max_inflight` gate, answering
  /// deadline_exceeded/resource_exhausted itself. `body` runs on a worker
  /// with the admitted context and must send exactly one response.
  void SubmitPooled(long id, const std::map<std::string, double>& fields,
                    const ResponseFn& respond,
                    std::function<void(const RequestContext&)> body);

  ModelManager* manager_ = nullptr;  ///< null in fixed-model mode
  STMaker* maker_;
  const std::vector<RawTrajectory>* corpus_;
  NdjsonServiceOptions options_;
  std::FILE* trace_log_ = nullptr;
  std::mutex trace_mu_;  ///< trace-log lines never interleave

  MetricsRegistry& registry_;
  Counter& c_requests_;
  Counter& c_malformed_;
  Counter& c_stats_requests_;
  Counter& c_route_requests_;
  Counter& c_reload_requests_;
  Counter& c_similar_requests_;
  Counter& c_query_requests_;
  Counter& c_watchdog_cancelled_;

  ThreadPool pool_;

  std::mutex inflight_mu_;
  std::map<uint64_t, InflightRequest> inflight_;
  uint64_t next_token_ = 0;
  std::atomic<bool> shutting_down_{false};
  std::thread watchdog_;
};

}  // namespace stmaker::net

#endif  // STMAKER_NET_NDJSON_SERVICE_H_
