#ifndef STMAKER_NET_NDJSON_SERVICE_H_
#define STMAKER_NET_NDJSON_SERVICE_H_

/// \file
/// \brief Transport-independent NDJSON request processor for serve mode.
///
/// NdjsonService is the protocol brain shared by every serve front-end:
/// the stdin/stdout loop, the epoll TCP server (net/server.h), and the
/// in-process SLO bench all feed request lines into HandleLine() and get
/// byte-identical response lines back — the golden-over-TCP test pins
/// this. One service instance owns the worker pool, the bounded-admission
/// gate (`max_inflight`), per-request deadlines measured from admission,
/// and the watchdog thread that cancels requests running past their
/// deadline (DESIGN.md §10, §14).
///
/// Request protocol (one flat JSON object per line, numeric fields only):
///   {"id": 1, "trip": 3, "k": 2, "eta": 0.3, "deadline_ms": 250,
///    "max_expansions": 10000}           -> summarize (async, via the pool)
///   {"id": 5, "route": 1, "src": 12, "dst": 977}  -> road route (sync)
///   {"id": 7, "stats": 1}                         -> metrics snapshot (sync)
///
/// Responses carry the request id and a wire status
/// ("ok"/"deadline_exceeded"/"resource_exhausted"/...); overload is shed
/// deterministically at admission with "resource_exhausted".

#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/context.h"
#include "common/metrics.h"
#include "common/parallel.h"
#include "common/status.h"
#include "core/stmaker.h"

namespace stmaker::net {

/// Serving knobs, mirroring the `stmaker_cli serve` flags.
struct NdjsonServiceOptions {
  /// Worker threads for summarize requests.
  int threads = 1;
  /// Default per-request deadline (ms) when the request carries none;
  /// 0 = none, negative = deterministically already expired.
  long default_deadline_ms = 0;
  /// Bounded admission: requests beyond this many in flight are rejected
  /// with resource_exhausted instead of queueing without bound.
  long max_inflight = 64;
  /// Default node-expansion budget for route searches (0 = unlimited).
  long max_expansions = 0;
};

/// See the file comment. Thread-safe: HandleLine may be called from many
/// transport threads at once.
class NdjsonService {
 public:
  /// Delivers one response line (no trailing newline). May be invoked on
  /// the calling thread (stats/route/errors) or later on a worker thread
  /// (summaries) — transports must tolerate both.
  using ResponseFn = std::function<void(std::string line)>;

  /// `maker` must be trained/loaded; `corpus` backs the "trip" field.
  /// Neither is owned; both must outlive the service.
  NdjsonService(STMaker* maker, const std::vector<RawTrajectory>* corpus,
                const NdjsonServiceOptions& options);

  /// Drains and stops the watchdog.
  ~NdjsonService();

  NdjsonService(const NdjsonService&) = delete;
  NdjsonService& operator=(const NdjsonService&) = delete;

  /// Processes one request line; `respond` fires exactly once.
  void HandleLine(const std::string& line, ResponseFn respond);

  /// Blocks until every admitted request has finished and responded.
  void Drain();

  /// Appends one NDJSON span tree per summarize request to `file` (not
  /// owned; pass nullptr to disable). Call before serving traffic.
  void set_trace_log(std::FILE* file) { trace_log_ = file; }

  /// Admission totals from the worker pool (for the shutdown report).
  size_t pool_admitted() const { return pool_.admitted(); }
  size_t pool_rejected() const { return pool_.rejected(); }

  // --- wire-format helpers (shared with transports and tests) ---------------

  /// JSON string escaping for response lines (control chars, quote,
  /// backslash).
  static std::string JsonEscape(const std::string& text);

  /// Wire name of a status category ("deadline_exceeded", "ok", ...).
  static std::string WireStatusName(StatusCode code);

  /// Parses one request line: a flat JSON object whose values are all
  /// numbers. The serve protocol needs nothing richer, and a hand-rolled
  /// scanner keeps the serving path dependency-free.
  static Result<std::map<std::string, double>> ParseFlatJsonNumbers(
      const std::string& line);

  /// Renders the uniform error/status response line.
  static std::string ErrorResponse(long id, const Status& status);

 private:
  /// One admitted request being tracked by the watchdog.
  struct InflightRequest {
    long id = 0;
    RequestContext::Clock::time_point deadline;
    CancelSource cancel;
  };

  void WatchdogMain();
  void MirrorCacheGauges();
  void HandleStats(long id, const ResponseFn& respond);
  void HandleRoute(long id, const std::map<std::string, double>& fields,
                   const ResponseFn& respond);
  void HandleSummarize(long id, const std::map<std::string, double>& fields,
                       ResponseFn respond);

  STMaker* maker_;
  const std::vector<RawTrajectory>* corpus_;
  NdjsonServiceOptions options_;
  std::FILE* trace_log_ = nullptr;
  std::mutex trace_mu_;  ///< trace-log lines never interleave

  MetricsRegistry& registry_;
  Counter& c_requests_;
  Counter& c_malformed_;
  Counter& c_stats_requests_;
  Counter& c_route_requests_;
  Counter& c_watchdog_cancelled_;

  ThreadPool pool_;

  std::mutex inflight_mu_;
  std::map<uint64_t, InflightRequest> inflight_;
  uint64_t next_token_ = 0;
  std::atomic<bool> shutting_down_{false};
  std::thread watchdog_;
};

}  // namespace stmaker::net

#endif  // STMAKER_NET_NDJSON_SERVICE_H_
