#include "net/connection.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "common/strings.h"

namespace stmaker::net {

const char* CloseReasonName(CloseReason reason) {
  switch (reason) {
    case CloseReason::kClientEof: return "client_eof";
    case CloseReason::kIdle: return "idle";
    case CloseReason::kSlowLoris: return "slow_loris";
    case CloseReason::kOversizedLine: return "oversized_line";
    case CloseReason::kWriteOverflow: return "write_overflow";
    case CloseReason::kError: return "error";
    case CloseReason::kDrained: return "drained";
    case CloseReason::kDrainForced: return "drain_forced";
  }
  return "unknown";
}

Connection::Connection(int fd, uint64_t id, const ConnectionLimits& limits,
                       ConnectionHost* host)
    : fd_(fd),
      id_(id),
      limits_(limits),
      host_(host),
      last_activity_(std::chrono::steady_clock::now()) {}

Connection::~Connection() {
  if (fd_ >= 0) ::close(fd_);
}

void Connection::OnReadable() {
  if (closed_ || stop_reading_) return;
  char chunk[65536];
  while (true) {
    STMAKER_FAILPOINT("net/read", {
      host_->OnInjectedFault("net/read");
      host_->CloseConnection(this, CloseReason::kError);
      return;
    });
    ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      host_->OnBytes(static_cast<size_t>(n), 0);
      last_activity_ = std::chrono::steady_clock::now();
      if (!IngestBytes(chunk, static_cast<size_t>(n))) return;
      if (stop_reading_) return;  // framing error mid-chunk
      continue;
    }
    if (n == 0) {
      // Peer half-closed: no more requests will arrive, but responses for
      // already-dispatched ones still flow. The loop closes the socket once
      // everything outstanding has flushed.
      peer_eof_ = true;
      stop_reading_ = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    host_->CloseConnection(this, CloseReason::kError);
    return;
  }
}

bool Connection::IngestBytes(const char* data, size_t size) {
  // While slicing this chunk, an inline (same-thread) response can settle
  // the request it answers; ingesting_ keeps the loop's MaybeClose from
  // treating that momentary "nothing outstanding" state as a reason to
  // close while later pipelined lines of the chunk are still unparsed.
  ingesting_ = true;
  bool keep_going = IngestLines(data, size);
  ingesting_ = false;
  return keep_going;
}

bool Connection::IngestLines(const char* data, size_t size) {
  size_t start = 0;
  for (size_t i = 0; i < size; ++i) {
    if (data[i] != '\n') continue;
    std::string line = std::move(read_buffer_);
    read_buffer_.clear();
    line.append(data + start, i - start);
    start = i + 1;
    if (line.size() > limits_.max_line_bytes) {
      HandleOversizedLine();
      return !closed_;
    }
    if (!line.empty()) {
      ++pending_requests_;
      host_->OnLine(this, std::move(line));
      if (closed_) return false;
      if (stop_reading_) return true;
    }
  }
  if (start < size) {
    if (read_buffer_.empty()) {
      partial_line_since_ = std::chrono::steady_clock::now();
    }
    read_buffer_.append(data + start, size - start);
    if (read_buffer_.size() > limits_.max_line_bytes) {
      HandleOversizedLine();
    }
  }
  return !closed_;
}

void Connection::HandleOversizedLine() {
  read_buffer_.clear();
  // Framing is unrecoverable — the rest of the oversized line would be
  // misparsed as new requests. Tell the client why, then close once the
  // responses already in flight have been answered and flushed.
  EnqueueResponse(StrFormat(
      "{\"id\": -1, \"status\": \"invalid_argument\", \"error\": "
      "\"request line exceeds %zu bytes; closing connection\"}",
      limits_.max_line_bytes));
  stop_reading_ = true;
  close_after_flush_ = true;
}

void Connection::OnWritable() {
  if (closed_) return;
  Flush();
}

void Connection::EnqueueResponse(const std::string& line) {
  if (closed_) return;
  size_t buffered = write_buffer_.size() - write_offset_;
  if (buffered + line.size() + 1 > limits_.max_write_buffer_bytes) {
    host_->CloseConnection(this, CloseReason::kWriteOverflow);
    return;
  }
  write_buffer_.append(line);
  write_buffer_.push_back('\n');
  last_activity_ = std::chrono::steady_clock::now();
  Flush();
}

void Connection::SettleRequest() {
  if (pending_requests_ > 0) --pending_requests_;
}

bool Connection::Flush() {
  while (write_offset_ < write_buffer_.size()) {
    STMAKER_FAILPOINT("net/write", {
      host_->OnInjectedFault("net/write");
      host_->CloseConnection(this, CloseReason::kError);
      return false;
    });
    // MSG_NOSIGNAL: a peer that reset the connection yields EPIPE here
    // instead of a process-wide SIGPIPE.
    ssize_t n = ::send(fd_, write_buffer_.data() + write_offset_,
                       write_buffer_.size() - write_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      host_->OnBytes(0, static_cast<size_t>(n));
      write_offset_ += static_cast<size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    host_->CloseConnection(this, CloseReason::kError);
    return false;
  }
  if (write_offset_ == write_buffer_.size()) {
    write_buffer_.clear();
    write_offset_ = 0;
  } else if (write_offset_ > (64u << 10)) {
    // Reclaim the sent prefix so a slow reader cannot pin the whole
    // history of the stream in memory.
    write_buffer_.erase(0, write_offset_);
    write_offset_ = 0;
  }
  return true;
}

bool Connection::TimedOut(std::chrono::steady_clock::time_point now,
                          CloseReason* reason) const {
  if (closed_) return false;
  if (!read_buffer_.empty() && now - partial_line_since_ > limits_.loris_timeout) {
    *reason = CloseReason::kSlowLoris;
    return true;
  }
  if (Settled() && read_buffer_.empty() &&
      now - last_activity_ > limits_.idle_timeout) {
    *reason = CloseReason::kIdle;
    return true;
  }
  return false;
}

}  // namespace stmaker::net
