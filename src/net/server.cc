#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "common/metrics.h"
#include "common/strings.h"

namespace stmaker::net {
namespace {

// epoll_event.data tags for the two non-connection descriptors each loop
// watches. Connection events carry the Connection* instead; real heap
// pointers can never collide with these small integers.
constexpr uint64_t kListenTag = 1;
constexpr uint64_t kWakeTag = 2;

/// Registry handles resolved once — the transport hot path must not pay a
/// registry lookup per read/write.
struct NetMetrics {
  Counter& accepted;
  Counter& accept_rejected;
  Counter& accept_faults;
  Counter& read_faults;
  Counter& write_faults;
  Counter& bytes_in;
  Counter& bytes_out;
  Counter& responses;
  Counter& responses_dropped;
  Gauge& connections;
  Gauge& drain_ms;
  MetricsRegistry& registry;

  explicit NetMetrics(MetricsRegistry& r)
      : accepted(r.counter("net.accepted")),
        accept_rejected(r.counter("net.accept_rejected")),
        accept_faults(r.counter("net.accept_faults")),
        read_faults(r.counter("net.read_faults")),
        write_faults(r.counter("net.write_faults")),
        bytes_in(r.counter("net.bytes_in")),
        bytes_out(r.counter("net.bytes_out")),
        responses(r.counter("net.responses")),
        responses_dropped(r.counter("net.responses_dropped")),
        connections(r.gauge("net.connections")),
        drain_ms(r.gauge("net.drain_ms")),
        registry(r) {}

  Counter& ClosedCounter(CloseReason reason) {
    return registry.counter(std::string("net.closed_") +
                            CloseReasonName(reason));
  }

  static NetMetrics& Get() {
    static NetMetrics metrics(MetricsRegistry::Global());
    return metrics;
  }
};

double MsBetween(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// The event loop running on the current thread, if any. Lets a response
/// callback invoked synchronously from a handler deliver inline — keeping
/// responses in request order for synchronous handlers — while cross-thread
/// callers go through the post queue.
thread_local void* tls_current_loop = nullptr;

}  // namespace

/// One worker: an epoll instance, a dup of the listening socket (so every
/// loop accepts for itself and owns its own close during drain), an eventfd
/// for cross-thread wakeups, and the connections it accepted. All
/// connection state is touched only from this loop's thread; other threads
/// communicate exclusively through Post().
class TcpServer::EventLoop : public ConnectionHost {
 public:
  /// Shared guard for cross-thread response delivery: the loop pointer is
  /// nulled (under the mutex) when the loop thread exits, so a response
  /// arriving after shutdown is dropped instead of dereferencing a dead
  /// loop.
  struct Handle {
    std::mutex mu;
    EventLoop* loop = nullptr;
  };

  explicit EventLoop(TcpServer* server) : server_(server) {}

  ~EventLoop() override {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
  }

  Status Init() {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      return Status::IoError(StrFormat("epoll_create1: %s", strerror(errno)));
    }
    wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (wake_fd_ < 0) {
      return Status::IoError(StrFormat("eventfd: %s", strerror(errno)));
    }
    listen_fd_ =
        ::fcntl(server_->listen_fd_.load(std::memory_order_acquire),
                F_DUPFD_CLOEXEC, 0);
    if (listen_fd_ < 0) {
      return Status::IoError(StrFormat("dup(listen): %s", strerror(errno)));
    }
    // Level-triggered accept with EPOLLEXCLUSIVE so a burst of connections
    // wakes one loop, not all of them (fall back to a plain registration on
    // kernels without it).
    epoll_event lev{};
    lev.events = EPOLLIN | EPOLLEXCLUSIVE;
    lev.data.u64 = kListenTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &lev) != 0) {
      lev.events = EPOLLIN;
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &lev) != 0) {
        return Status::IoError(
            StrFormat("epoll_ctl(listen): %s", strerror(errno)));
      }
    }
    epoll_event wev{};
    wev.events = EPOLLIN;
    wev.data.u64 = kWakeTag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &wev) != 0) {
      return Status::IoError(StrFormat("epoll_ctl(wake): %s", strerror(errno)));
    }
    handle_ = std::make_shared<Handle>();
    handle_->loop = this;
    return Status::OK();
  }

  void StartThread() {
    thread_ = std::thread([this] { ThreadMain(); });
  }

  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  int wake_fd() const { return wake_fd_; }
  double drain_duration_ms() const { return drain_duration_ms_; }

  /// Enqueues `fn` onto this loop's thread and wakes it. Only safe while
  /// the loop is alive — cross-thread callers go through the Handle.
  void Post(std::function<void()> fn) {
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      posted_.push_back(std::move(fn));
    }
    uint64_t one = 1;
    ssize_t ignored = ::write(wake_fd_, &one, sizeof one);
    (void)ignored;
  }

  // --- ConnectionHost -------------------------------------------------------

  void OnLine(Connection* connection, std::string line) override {
    const uint64_t conn_id = connection->id();
    std::shared_ptr<Handle> handle = handle_;
    // One-shot: the handler contract is exactly one response per line;
    // a buggy double-respond must not corrupt the pending-request count.
    auto responded = std::make_shared<std::atomic<bool>>(false);
    ResponseFn respond = [handle, conn_id, responded](std::string response) {
      if (responded->exchange(true)) return;
      std::lock_guard<std::mutex> lock(handle->mu);
      EventLoop* loop = handle->loop;
      if (loop == nullptr) {
        NetMetrics::Get().responses_dropped.Increment();
        return;
      }
      if (loop == tls_current_loop) {
        // Synchronous handler on the loop thread: deliver inline so the
        // response is enqueued before any later line of the same read
        // batch (e.g. an oversized-line error record) — keeping responses
        // in request order for synchronous handlers.
        loop->DeliverResponse(conn_id, std::move(response));
        return;
      }
      loop->Post([loop, conn_id, response = std::move(response)]() mutable {
        loop->DeliverResponse(conn_id, std::move(response));
      });
    };
    server_->handler_(std::move(line), respond);
  }

  void CloseConnection(Connection* connection, CloseReason reason) override {
    if (connection->closed()) return;
    connection->MarkClosed();
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, connection->fd(), nullptr);
    NetMetrics& metrics = NetMetrics::Get();
    metrics.ClosedCounter(reason).Increment();
    metrics.connections.Add(-1);
    server_->num_connections_.fetch_sub(1, std::memory_order_relaxed);
    if (reason == CloseReason::kDrainForced) {
      server_->forced_closes_.fetch_add(1, std::memory_order_relaxed);
    }
    auto it = connections_.find(connection->id());
    if (it != connections_.end()) {
      // Deferred destruction: epoll may still hand us events for this
      // connection later in the current batch; they check closed() against
      // a still-valid object. The graveyard empties at the end of the
      // iteration.
      graveyard_.push_back(std::move(it->second));
      connections_.erase(it);
    }
  }

  void OnBytes(size_t in, size_t out) override {
    NetMetrics& metrics = NetMetrics::Get();
    if (in > 0) metrics.bytes_in.Increment(in);
    if (out > 0) metrics.bytes_out.Increment(out);
  }

  void OnInjectedFault(const char* point) override {
    NetMetrics& metrics = NetMetrics::Get();
    if (std::strcmp(point, "net/read") == 0) {
      metrics.read_faults.Increment();
    } else {
      metrics.write_faults.Increment();
    }
  }

 private:
  void ThreadMain() {
    tls_current_loop = this;
    epoll_event events[128];
    while (true) {
      BeginDrainIfSignalled();
      int n = ::epoll_wait(epoll_fd_, events,
                           static_cast<int>(std::size(events)), /*timeout=*/50);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // epoll itself failed; nothing recoverable remains
      }
      for (int i = 0; i < n; ++i) {
        const uint64_t tag = events[i].data.u64;
        if (tag == kListenTag) {
          AcceptBatch();
          continue;
        }
        if (tag == kWakeTag) {
          uint64_t value;
          while (::read(wake_fd_, &value, sizeof value) > 0) {
          }
          continue;
        }
        auto* connection = static_cast<Connection*>(events[i].data.ptr);
        if (connection->closed()) continue;
        const uint32_t ev = events[i].events;
        if ((ev & (EPOLLHUP | EPOLLERR)) != 0) {
          CloseConnection(connection, CloseReason::kError);
          continue;
        }
        if ((ev & (EPOLLIN | EPOLLRDHUP)) != 0) connection->OnReadable();
        if (!connection->closed() && (ev & EPOLLOUT) != 0) {
          connection->OnWritable();
        }
        if (!connection->closed()) MaybeClose(connection);
      }
      RunPosted();
      BeginDrainIfSignalled();
      Tick();
      graveyard_.clear();
      if (drain_started_ && connections_.empty()) break;
    }
    if (drain_started_) {
      drain_duration_ms_ =
          MsBetween(drain_start_, std::chrono::steady_clock::now());
    }
    {
      std::lock_guard<std::mutex> lock(handle_->mu);
      handle_->loop = nullptr;
    }
    // Anything posted between the last RunPosted and the handle
    // invalidation delivers into an empty connection table (counted as
    // dropped) — run it so the queue does not silently swallow the count.
    RunPosted();
    graveyard_.clear();
  }

  void AcceptBatch() {
    if (listen_fd_ < 0) return;
    while (true) {
      int fd =
          ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR || errno == ECONNABORTED) continue;
        // EAGAIN: drained the backlog. EMFILE/ENFILE: out of descriptors —
        // back off; the level-triggered registration retries on the next
        // wakeup instead of spinning.
        return;
      }
      bool injected_fault = false;
      STMAKER_FAILPOINT("net/accept", { injected_fault = true; });
      if (injected_fault) {
        NetMetrics::Get().accept_faults.Increment();
        ::close(fd);
        continue;
      }
      if (drain_started_ ||
          server_->draining_.load(std::memory_order_acquire)) {
        ::close(fd);
        continue;
      }
      size_t count =
          server_->num_connections_.fetch_add(1, std::memory_order_relaxed);
      if (count >= server_->options_.max_connections) {
        server_->num_connections_.fetch_sub(1, std::memory_order_relaxed);
        NetMetrics::Get().accept_rejected.Increment();
        // 429-style accept-time shedding: one best-effort error record so
        // the client knows it was capacity, not a crash, then close.
        const char kReject[] =
            "{\"id\": -1, \"status\": \"resource_exhausted\", "
            "\"error\": \"connection limit reached\"}\n";
        (void)::send(fd, kReject, sizeof kReject - 1,
                     MSG_NOSIGNAL | MSG_DONTWAIT);
        ::close(fd);
        continue;
      }
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const uint64_t id =
          server_->next_connection_id_.fetch_add(1, std::memory_order_relaxed);
      auto connection = std::make_unique<Connection>(
          fd, id, server_->options_.limits, this);
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
      ev.data.ptr = connection.get();
      if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
        server_->num_connections_.fetch_sub(1, std::memory_order_relaxed);
        continue;  // destructor closes fd
      }
      NetMetrics::Get().accepted.Increment();
      NetMetrics::Get().connections.Add(1);
      connections_.emplace(id, std::move(connection));
    }
  }

  void DeliverResponse(uint64_t conn_id, std::string line) {
    auto it = connections_.find(conn_id);
    if (it == connections_.end() || it->second->closed()) {
      NetMetrics::Get().responses_dropped.Increment();
      return;
    }
    Connection* connection = it->second.get();
    connection->SettleRequest();
    NetMetrics::Get().responses.Increment();
    connection->EnqueueResponse(line);  // may close on overflow/write error
    if (!connection->closed()) MaybeClose(connection);
  }

  /// Closes a connection that has nothing left to do: all dispatched
  /// requests answered, all bytes flushed, and either the peer is gone, a
  /// framing error condemned it, or the server is draining.
  void MaybeClose(Connection* connection) {
    if (connection->closed() || connection->ingesting() ||
        !connection->Settled()) {
      return;
    }
    if (connection->close_after_flush()) {
      CloseConnection(connection, CloseReason::kOversizedLine);
    } else if (connection->peer_eof()) {
      CloseConnection(connection, CloseReason::kClientEof);
    } else if (drain_started_) {
      CloseConnection(connection, CloseReason::kDrained);
    }
  }

  void BeginDrainIfSignalled() {
    if (drain_started_ ||
        !server_->draining_.load(std::memory_order_acquire)) {
      return;
    }
    drain_started_ = true;
    drain_start_ = std::chrono::steady_clock::now();
    drain_deadline_ =
        drain_start_ +
        std::chrono::milliseconds(server_->options_.drain_deadline_ms);
    // Stop accepting: deregister and close this loop's dup. Once every
    // loop has done so the listening socket itself dies and new connects
    // are refused.
    if (listen_fd_ >= 0) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    std::vector<Connection*> all;
    all.reserve(connections_.size());
    for (auto& [id, connection] : connections_) all.push_back(connection.get());
    for (Connection* connection : all) {
      connection->StopReading();
      MaybeClose(connection);  // idle keep-alives close right away
    }
  }

  /// Periodic bookkeeping (every epoll timeout): idle/slow-loris reaping,
  /// and the drain deadline.
  void Tick() {
    const auto now = std::chrono::steady_clock::now();
    std::vector<std::pair<Connection*, CloseReason>> victims;
    for (auto& [id, connection] : connections_) {
      if (drain_started_) {
        if (now >= drain_deadline_) {
          victims.emplace_back(connection.get(), CloseReason::kDrainForced);
        }
        continue;
      }
      CloseReason reason;
      if (connection->TimedOut(now, &reason)) {
        victims.emplace_back(connection.get(), reason);
      }
    }
    for (auto& [connection, reason] : victims) {
      CloseConnection(connection, reason);
    }
  }

  void RunPosted() {
    std::vector<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(post_mu_);
      tasks.swap(posted_);
    }
    for (std::function<void()>& task : tasks) task();
  }

  TcpServer* server_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;  ///< this loop's dup of the listening socket
  std::shared_ptr<Handle> handle_;
  std::thread thread_;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;

  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  std::vector<std::unique_ptr<Connection>> graveyard_;

  bool drain_started_ = false;
  std::chrono::steady_clock::time_point drain_start_{};
  std::chrono::steady_clock::time_point drain_deadline_{};
  double drain_duration_ms_ = 0;
};

TcpServer::TcpServer(const TcpServerOptions& options, Handler handler)
    : options_(options), handler_(std::move(handler)) {
  for (int& fd : wake_fds_) fd = -1;
}

TcpServer::~TcpServer() {
  if (started_ && !waited_) {
    SignalShutdown();
    (void)Wait();
  }
  CloseListenFd();
}

void TcpServer::CloseListenFd() {
  int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
}

Status TcpServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (options_.num_loops < 1 || options_.num_loops > kMaxLoops) {
    return Status::InvalidArgument(
        StrFormat("num_loops must be in [1, %d], got %d", kMaxLoops,
                  options_.num_loops));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(StrFormat("socket: %s", strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    return Status::IoError(StrFormat("bind %s:%u: %s",
                                     options_.bind_address.c_str(),
                                     options_.port, strerror(errno)));
  }
  if (::listen(listen_fd_, 511) != 0) {
    return Status::IoError(StrFormat("listen: %s", strerror(errno)));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return Status::IoError(StrFormat("getsockname: %s", strerror(errno)));
  }
  port_ = ntohs(bound.sin_port);

  loops_.reserve(static_cast<size_t>(options_.num_loops));
  for (int i = 0; i < options_.num_loops; ++i) {
    auto loop = std::make_unique<EventLoop>(this);
    STMAKER_RETURN_IF_ERROR(loop->Init());
    wake_fds_[num_wake_fds_++] = loop->wake_fd();
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) loop->StartThread();
  started_ = true;
  return Status::OK();
}

void TcpServer::SignalShutdown() {
  // Async-signal-safe on purpose: one atomic store and a write(2) per
  // loop. The loops notice the flag on their next wakeup (which the
  // eventfd write forces immediately).
  draining_.store(true, std::memory_order_release);
  // Close the original listening descriptor now (atomic exchange + close,
  // both signal-safe). The loops' dups keep the file description alive
  // until each loop drops its own on drain; after the last dup closes, the
  // kernel resets queued-but-unaccepted connections instead of leaving
  // clients handshaken but forever unserved.
  CloseListenFd();
  const uint64_t one = 1;
  for (int i = 0; i < num_wake_fds_; ++i) {
    ssize_t ignored = ::write(wake_fds_[i], &one, sizeof one);
    (void)ignored;
  }
}

Status TcpServer::Wait() {
  if (!started_) return Status::FailedPrecondition("server not started");
  if (!waited_) {
    for (auto& loop : loops_) loop->Join();
    waited_ = true;
    CloseListenFd();
    for (auto& loop : loops_) {
      drain_ms_ = std::max(drain_ms_, loop->drain_duration_ms());
    }
    NetMetrics::Get().drain_ms.Set(static_cast<int64_t>(drain_ms_));
  }
  const size_t forced = forced_closes_.load(std::memory_order_relaxed);
  if (forced > 0) {
    return Status::DeadlineExceeded(StrFormat(
        "drain deadline (%d ms) expired with %zu connections force-closed",
        options_.drain_deadline_ms, forced));
  }
  return Status::OK();
}

size_t TcpServer::forced_closes() const {
  return forced_closes_.load(std::memory_order_relaxed);
}

}  // namespace stmaker::net
