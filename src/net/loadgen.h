#ifndef STMAKER_NET_LOADGEN_H_
#define STMAKER_NET_LOADGEN_H_

/// \file
/// \brief Open-loop (Poisson arrival) NDJSON load generator.
///
/// Drives a running TCP serve front-end at a fixed *offered* rate: request
/// send times are drawn from a Poisson process scheduled in advance, and
/// latency is measured from the scheduled arrival time, not the actual
/// send time — so a server that stalls cannot slow the generator down and
/// hide its own queueing delay (the coordinated-omission trap closed-loop
/// clients fall into). The offered load is split over K pipelined
/// keep-alive connections, each an independent Poisson stream at rate/K
/// (their superposition is again Poisson at the full rate).
///
/// Used by `tools/loadgen.cc` (command-line client, HDR-style percentile
/// report) and by the SLO sweep in `bench/throughput.cpp` (drives an
/// in-process server to saturation and records the p99-vs-QPS knee).

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace stmaker::net {

/// Load shape and target. Deterministic given `seed` (arrival times; actual
/// latencies of course depend on the server).
struct LoadgenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  /// Pipelined keep-alive connections sharing the offered load.
  int connections = 4;
  /// Offered arrival rate, requests per second (open loop).
  double rate_qps = 100.0;
  /// How long to offer load, seconds.
  double duration_s = 2.0;
  /// Seed for the arrival-process PRNG.
  uint64_t seed = 1;
  /// Requests cycle "trip" over [0, num_trips).
  size_t num_trips = 1;
  /// Per-request deadline_ms field (0 = omit; the server default applies).
  long deadline_ms = 0;
  /// After the last send, wait this long for straggler responses before
  /// counting them unanswered.
  int drain_timeout_ms = 10'000;
  /// Poll a `stats` probe until the server answers before offering load
  /// (retried connects; scripts need not race the server start).
  bool wait_ready = true;
  int ready_timeout_ms = 30'000;
};

/// Outcome of one load run: counts by wire status plus an HDR-style
/// latency distribution (exact quantiles over all samples).
struct LoadgenReport {
  size_t sent = 0;
  size_t received = 0;
  size_t ok = 0;
  /// Sent but never answered (connection died or drain timeout hit).
  size_t unanswered = 0;
  /// Responses by wire status ("ok", "resource_exhausted", ...).
  std::map<std::string, size_t> by_status;
  /// Connections that failed to establish.
  size_t connect_failures = 0;

  double offered_qps = 0;
  double achieved_qps = 0;  ///< received / wall duration
  double duration_s = 0;    ///< wall clock, first send to last response

  double mean_ms = 0;
  double p50_ms = 0;
  double p90_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double max_ms = 0;

  /// Multi-line human report (percentile table).
  std::string ToString() const;
  /// One flat JSON object (rides in BENCH_throughput.json records).
  std::string ToJson() const;
};

/// Runs one open-loop load against `options.host:port`. Fails only when no
/// connection could be established (or the readiness probe timed out);
/// per-request failures are reported in the LoadgenReport counts.
Result<LoadgenReport> RunOpenLoopLoad(const LoadgenOptions& options);

}  // namespace stmaker::net

#endif  // STMAKER_NET_LOADGEN_H_
