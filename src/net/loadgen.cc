#include "net/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <random>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/strings.h"

namespace stmaker::net {
namespace {

using Clock = std::chrono::steady_clock;

/// Blocking connect to host:port with a receive timeout (bounds how long a
/// reader can hang on a dead server). Returns -1 on failure.
int ConnectTcp(const std::string& host, uint16_t port, int recv_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
          0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  timeval tv{};
  tv.tv_sec = recv_timeout_ms / 1000;
  tv.tv_usec = (recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

/// Writes the whole buffer (blocking socket); false on a dead peer.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Buffered line reader over a blocking socket.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// Next newline-terminated line (stripped). False on EOF, error, or the
  /// socket receive timeout.
  bool Next(std::string* line) {
    while (true) {
      size_t nl = buffer_.find('\n', scan_from_);
      if (nl != std::string::npos) {
        line->assign(buffer_, 0, nl);
        buffer_.erase(0, nl + 1);
        scan_from_ = 0;
        return true;
      }
      scan_from_ = buffer_.size();
      char chunk[16384];
      ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n > 0) {
        buffer_.append(chunk, static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF, reset, or SO_RCVTIMEO expired
    }
  }

 private:
  int fd_;
  std::string buffer_;
  size_t scan_from_ = 0;
};

/// Pulls `"key": <integer>` out of a response line; fallback when absent.
long long ExtractInt(const std::string& line, const char* key,
                     long long fallback) {
  std::string needle = std::string("\"") + key + "\": ";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return fallback;
  return std::atoll(line.c_str() + pos + needle.size());
}

/// Pulls `"key": "value"` out of a response line.
std::string ExtractString(const std::string& line, const char* key) {
  std::string needle = std::string("\"") + key + "\": \"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) return "";
  size_t start = pos + needle.size();
  size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

/// State for one connection's writer/reader pair.
struct ConnState {
  int fd = -1;
  std::mutex mu;
  std::unordered_map<long long, Clock::time_point> scheduled;  ///< id -> due
  std::vector<double> latencies_ms;
  std::map<std::string, size_t> by_status;
  size_t sent = 0;
  size_t received = 0;
  size_t ok = 0;
};

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Retries a stats probe until the server answers or the timeout expires.
bool WaitReady(const LoadgenOptions& options) {
  Clock::time_point give_up =
      Clock::now() + std::chrono::milliseconds(options.ready_timeout_ms);
  while (Clock::now() < give_up) {
    int fd = ConnectTcp(options.host, options.port, 2'000);
    if (fd >= 0) {
      bool up = false;
      if (SendAll(fd, "{\"id\": 0, \"stats\": 1}\n")) {
        LineReader reader(fd);
        std::string line;
        up = reader.Next(&line) && ExtractString(line, "status") == "ok";
      }
      ::close(fd);
      if (up) return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

}  // namespace

Result<LoadgenReport> RunOpenLoopLoad(const LoadgenOptions& options) {
  if (options.connections < 1) {
    return Status::InvalidArgument("loadgen needs at least one connection");
  }
  if (options.rate_qps <= 0 || options.duration_s <= 0) {
    return Status::InvalidArgument("loadgen rate and duration must be > 0");
  }
  if (options.wait_ready && !WaitReady(options)) {
    return Status::IoError(StrFormat(
        "server at %s:%u not ready within %d ms", options.host.c_str(),
        options.port, options.ready_timeout_ms));
  }

  const int k = options.connections;
  std::vector<std::unique_ptr<ConnState>> conns;
  size_t connect_failures = 0;
  for (int c = 0; c < k; ++c) {
    auto conn = std::make_unique<ConnState>();
    conn->fd =
        ConnectTcp(options.host, options.port, options.drain_timeout_ms);
    if (conn->fd < 0) {
      ++connect_failures;
      continue;
    }
    conns.push_back(std::move(conn));
  }
  if (conns.empty()) {
    return Status::IoError(StrFormat("could not connect to %s:%u",
                                     options.host.c_str(), options.port));
  }

  const double rate_per_conn =
      options.rate_qps / static_cast<double>(conns.size());
  const Clock::time_point start = Clock::now();
  const Clock::time_point end_of_load =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(options.duration_s));

  std::vector<std::thread> threads;
  threads.reserve(conns.size() * 2);
  for (size_t c = 0; c < conns.size(); ++c) {
    ConnState* conn = conns[c].get();

    // Reader: consumes response lines until EOF/timeout, pairing each id
    // with its *scheduled* send time.
    threads.emplace_back([conn] {
      LineReader reader(conn->fd);
      std::string line;
      while (reader.Next(&line)) {
        Clock::time_point now = Clock::now();
        long long id = ExtractInt(line, "id", -1);
        std::string status = ExtractString(line, "status");
        std::lock_guard<std::mutex> lock(conn->mu);
        auto it = conn->scheduled.find(id);
        if (it == conn->scheduled.end()) continue;  // not one of ours
        conn->latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(now - it->second)
                .count());
        conn->scheduled.erase(it);
        ++conn->received;
        if (status == "ok") ++conn->ok;
        ++conn->by_status[status.empty() ? "unparsed" : status];
      }
    });

    // Writer: a Poisson stream at rate/K. Request ids are globally unique
    // (connection-striped) so duplicate detection in the drain test is
    // exact.
    threads.emplace_back([conn, c, rate_per_conn, start, end_of_load,
                          &options] {
      std::mt19937_64 rng(options.seed * 1'000'003 + c);
      std::exponential_distribution<double> interarrival(rate_per_conn);
      Clock::time_point due = start;
      long long seq = 0;
      while (true) {
        due += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(interarrival(rng)));
        if (due >= end_of_load) break;
        std::this_thread::sleep_until(due);
        long long id = static_cast<long long>(c) * 1'000'000'000LL + ++seq;
        size_t trip = static_cast<size_t>(seq) % options.num_trips;
        std::string request =
            options.deadline_ms != 0
                ? StrFormat("{\"id\": %lld, \"trip\": %zu, \"deadline_ms\": "
                            "%ld}\n",
                            id, trip, options.deadline_ms)
                : StrFormat("{\"id\": %lld, \"trip\": %zu}\n", id, trip);
        {
          // Record the scheduled time *before* sending: a response cannot
          // race its own bookkeeping, and latency is measured from `due`,
          // not from whenever the send syscall got around to happening.
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->scheduled.emplace(id, due);
          ++conn->sent;
        }
        if (!SendAll(conn->fd, request)) {
          std::lock_guard<std::mutex> lock(conn->mu);
          conn->scheduled.erase(id);
          --conn->sent;
          break;  // peer gone; reader will see EOF
        }
      }
      // Half-close: tells the server this client is done. The server
      // answers everything still in flight, flushes, and closes — which
      // is what unblocks the reader thread via EOF.
      ::shutdown(conn->fd, SHUT_WR);
    });
  }
  for (std::thread& t : threads) t.join();

  LoadgenReport report;
  report.offered_qps = options.rate_qps;
  report.connect_failures = connect_failures;
  std::vector<double> all;
  for (auto& conn : conns) {
    report.sent += conn->sent;
    report.received += conn->received;
    report.ok += conn->ok;
    report.unanswered += conn->scheduled.size();
    for (const auto& [status, count] : conn->by_status) {
      report.by_status[status] += count;
    }
    all.insert(all.end(), conn->latencies_ms.begin(),
               conn->latencies_ms.end());
    ::close(conn->fd);
  }
  report.duration_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  report.achieved_qps =
      report.duration_s > 0
          ? static_cast<double>(report.received) / report.duration_s
          : 0;
  std::sort(all.begin(), all.end());
  if (!all.empty()) {
    double sum = 0;
    for (double v : all) sum += v;
    report.mean_ms = sum / static_cast<double>(all.size());
    report.p50_ms = Percentile(all, 0.50);
    report.p90_ms = Percentile(all, 0.90);
    report.p99_ms = Percentile(all, 0.99);
    report.p999_ms = Percentile(all, 0.999);
    report.max_ms = all.back();
  }
  return report;
}

std::string LoadgenReport::ToString() const {
  std::string out = StrFormat(
      "offered %.1f qps for %.2f s -> sent %zu, received %zu (ok %zu), "
      "unanswered %zu, achieved %.1f qps\n",
      offered_qps, duration_s, sent, received, ok, unanswered, achieved_qps);
  out += "  status:";
  for (const auto& [status, count] : by_status) {
    out += StrFormat(" %s=%zu", status.c_str(), count);
  }
  if (by_status.empty()) out += " (none)";
  out += "\n";
  out += StrFormat(
      "  latency ms: mean %.3f p50 %.3f p90 %.3f p99 %.3f p99.9 %.3f "
      "max %.3f\n",
      mean_ms, p50_ms, p90_ms, p99_ms, p999_ms, max_ms);
  return out;
}

std::string LoadgenReport::ToJson() const {
  size_t shed = 0;
  auto it = by_status.find("resource_exhausted");
  if (it != by_status.end()) shed = it->second;
  return StrFormat(
      "{\"offered_qps\": %.3f, \"achieved_qps\": %.3f, \"sent\": %zu, "
      "\"received\": %zu, \"ok\": %zu, \"shed\": %zu, \"unanswered\": %zu, "
      "\"mean_ms\": %.3f, \"p50_ms\": %.3f, \"p90_ms\": %.3f, "
      "\"p99_ms\": %.3f, \"p999_ms\": %.3f, \"max_ms\": %.3f}",
      offered_qps, achieved_qps, sent, received, ok, shed, unanswered,
      mean_ms, p50_ms, p90_ms, p99_ms, p999_ms, max_ms);
}

}  // namespace stmaker::net
