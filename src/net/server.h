#ifndef STMAKER_NET_SERVER_H_
#define STMAKER_NET_SERVER_H_

/// \file
/// \brief Non-blocking epoll TCP front-end for the NDJSON serve protocol.
///
/// TcpServer listens on one TCP socket and runs N acceptor-less worker
/// event loops (edge-triggered epoll, one thread each). Every loop holds
/// its own dup of the listening descriptor and accepts directly — there is
/// no dedicated acceptor thread to become a bottleneck or a single point of
/// wakeup. Requests are newline-delimited JSON lines, pipelined freely over
/// keep-alive connections; the server never interprets them beyond framing
/// — each complete line is handed to the Handler, and the response line the
/// handler produces (synchronously or from any other thread) is routed back
/// to the connection that sent it.
///
/// Robustness properties (see DESIGN.md §14):
///   - per-connection bounded read/write buffers and a line-length cap;
///   - `max_connections` enforced at accept time (the excess client gets
///     one `resource_exhausted` record, then close);
///   - idle and slow-loris timeouts reap dead or malicious peers;
///   - ECONNRESET/EPIPE/partial writes degrade to a counted close, never a
///     crash or a stuck loop (MSG_NOSIGNAL everywhere);
///   - `net/accept`, `net/read`, `net/write` failpoints inject transport
///     faults for the fault-injection suite;
///   - SignalShutdown() (async-signal-safe, called from the SIGTERM
///     handler) starts a graceful drain: stop accepting, stop reading,
///     finish every dispatched request, flush buffers, then close — with a
///     hard drain deadline after which stragglers are force-closed.
///
/// Metrics (global registry): net.accepted, net.accept_rejected,
/// net.accept_faults, net.read_faults, net.write_faults, net.connections
/// (gauge), net.bytes_in, net.bytes_out, net.responses,
/// net.responses_dropped, net.closed_* (per CloseReason), net.drain_ms
/// (gauge), net.drain_forced.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/connection.h"

namespace stmaker::net {

/// Listening-socket and event-loop configuration.
struct TcpServerOptions {
  /// IPv4 address to bind ("127.0.0.1" keeps the server loopback-only).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Number of worker event loops (threads). Each accepts and serves its
  /// own connections.
  int num_loops = 1;
  /// Accept-time connection cap across all loops; connection N+1 is told
  /// `resource_exhausted` and closed.
  size_t max_connections = 1024;
  /// Per-connection limits (line length, write-buffer cap, timeouts).
  ConnectionLimits limits;
  /// Graceful-drain budget: after SignalShutdown(), connections that still
  /// have unanswered requests or unflushed bytes after this long are
  /// force-closed (counted in net.drain_forced).
  int drain_deadline_ms = 5'000;
};

/// A TCP line server: frames NDJSON requests, delegates each line to a
/// handler, writes handler responses back. See the file comment.
class TcpServer {
 public:
  /// Delivers one response line (no newline) back to the requesting
  /// connection. Thread-safe, callable exactly once per handled line;
  /// extra calls and responses for connections that died in the meantime
  /// are dropped (net.responses_dropped).
  using ResponseFn = std::function<void(std::string line)>;

  /// Called on an event-loop thread with one complete, non-empty request
  /// line (newline stripped). Must eventually invoke `respond` — from this
  /// thread or any other — exactly once; until then the connection counts
  /// the request as in flight and graceful drain waits for it.
  using Handler =
      std::function<void(std::string line, const ResponseFn& respond)>;

  TcpServer(const TcpServerOptions& options, Handler handler);

  /// Joins all loops (drains first if still running).
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the worker loops.
  Status Start();

  /// The bound TCP port (after Start(); useful with options.port == 0).
  uint16_t port() const { return port_; }

  /// Begins graceful drain. Async-signal-safe (an atomic store plus
  /// eventfd writes) so a SIGTERM handler can call it directly. Idempotent.
  void SignalShutdown();

  /// Blocks until every loop has drained and exited, then reports: OK when
  /// all connections finished cleanly inside the drain deadline,
  /// kDeadlineExceeded when stragglers were force-closed.
  Status Wait();

  /// Wall-clock milliseconds the drain took (valid after Wait()).
  double drain_ms() const { return drain_ms_; }
  /// Connections force-closed at the drain deadline (valid after Wait()).
  size_t forced_closes() const;

 private:
  class EventLoop;
  friend class EventLoop;

  /// Closes the original listening descriptor exactly once (atomic
  /// exchange, no locks — callable from the signal path). The per-loop
  /// dups keep the socket's file description alive until each loop drops
  /// its own on drain; when the last dup closes, queued-but-unaccepted
  /// connections are reset by the kernel.
  void CloseListenFd();

  TcpServerOptions options_;
  Handler handler_;
  std::atomic<int> listen_fd_{-1};
  uint16_t port_ = 0;
  bool started_ = false;
  bool waited_ = false;

  std::atomic<bool> draining_{false};
  std::atomic<size_t> num_connections_{0};
  std::atomic<uint64_t> next_connection_id_{1};
  std::atomic<size_t> forced_closes_{0};

  /// Wake eventfds, one per loop, kept in a flat array so the
  /// async-signal-safe SignalShutdown() can poke every loop without
  /// touching the heap or locks.
  static constexpr int kMaxLoops = 64;
  int wake_fds_[kMaxLoops];
  int num_wake_fds_ = 0;

  std::vector<std::unique_ptr<EventLoop>> loops_;
  double drain_ms_ = 0;
};

}  // namespace stmaker::net

#endif  // STMAKER_NET_SERVER_H_
