#ifndef STMAKER_NET_CONNECTION_H_
#define STMAKER_NET_CONNECTION_H_

/// \file
/// \brief One accepted NDJSON-over-TCP client connection.
///
/// A Connection owns a non-blocking socket and the per-client state the
/// event loop needs: a bounded partial-line read buffer, a bounded outgoing
/// write buffer, the count of requests dispatched but not yet answered, and
/// the timestamps the idle/slow-loris reapers check. All methods must be
/// called from the owning event-loop thread; cross-thread response delivery
/// goes through the loop's post queue (see server.h).
///
/// Lifecycle: the loop accepts the socket, registers it edge-triggered, and
/// calls OnReadable()/OnWritable() as epoll reports events. Complete lines
/// are handed to the ConnectionHost one at a time; responses come back via
/// EnqueueResponse(). The host closes the connection by dropping it — the
/// destructor closes the file descriptor.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

namespace stmaker::net {

class Connection;

/// Why the server closed a connection; mapped onto `net.closed_*` counters
/// so operators can tell protocol abuse from client churn.
enum class CloseReason {
  kClientEof,      ///< peer finished cleanly (EOF after all responses flushed)
  kIdle,           ///< no traffic for longer than the idle timeout
  kSlowLoris,      ///< a partial request line outlived the loris timeout
  kOversizedLine,  ///< a request line exceeded max_line_bytes
  kWriteOverflow,  ///< peer stopped reading; write buffer hit its cap
  kError,          ///< read/write error (ECONNRESET, EPIPE, injected fault)
  kDrained,        ///< graceful drain: in-flight requests done, buffers flushed
  kDrainForced,    ///< drain deadline expired with work still outstanding
};

/// Human-readable name of a CloseReason ("idle", "slow_loris", ...).
const char* CloseReasonName(CloseReason reason);

/// Per-connection resource limits, shared by every connection of a server.
struct ConnectionLimits {
  /// Longest accepted request line (bytes, excluding the newline). A client
  /// that exceeds it gets one `invalid_argument` error record and the
  /// connection is closed once prior in-flight requests have answered —
  /// framing is unrecoverable after a truncated line.
  size_t max_line_bytes = 1 << 20;
  /// Cap on buffered unsent response bytes. A peer that stops reading while
  /// pipelining requests is disconnected when this fills, bounding
  /// per-connection memory.
  size_t max_write_buffer_bytes = 4u << 20;
  /// Reap connections with no traffic and no in-flight work after this long.
  std::chrono::milliseconds idle_timeout{60'000};
  /// Reap connections holding a partial request line open this long
  /// (slow-loris defense; also bounds half-dead peers).
  std::chrono::milliseconds loris_timeout{10'000};
};

/// Callbacks a Connection raises into its event loop.
class ConnectionHost {
 public:
  virtual ~ConnectionHost() = default;
  /// One complete, non-empty request line (newline stripped). The host
  /// dispatches it and eventually answers via EnqueueResponse/
  /// SettleRequest on the same connection (or drops it if the connection
  /// closed first).
  virtual void OnLine(Connection* connection, std::string line) = 0;
  /// The connection must be closed (fatal transport or protocol error).
  /// The host unregisters and destroys it; `connection` stays valid only
  /// until the host's close bookkeeping runs.
  virtual void CloseConnection(Connection* connection, CloseReason reason) = 0;
  /// Transport byte accounting (feeds net.bytes_in / net.bytes_out).
  virtual void OnBytes(size_t bytes_in, size_t bytes_out) = 0;
  /// A `net/read` or `net/write` failpoint fired on this connection (feeds
  /// net.read_faults / net.write_faults; the close itself follows as a
  /// CloseConnection(kError)).
  virtual void OnInjectedFault(const char* point) = 0;
};

/// State machine for one accepted socket. See file comment for threading.
class Connection {
 public:
  /// Takes ownership of `fd` (closed in the destructor). `id` is the
  /// server-unique identifier responses are routed by.
  Connection(int fd, uint64_t id, const ConnectionLimits& limits,
             ConnectionHost* host);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }
  uint64_t id() const { return id_; }

  /// Edge-triggered read pump: reads until EAGAIN/EOF, slicing complete
  /// lines out to the host. May call CloseConnection on errors.
  void OnReadable();

  /// Edge-triggered write pump: flushes the buffered responses until
  /// EAGAIN or empty. May call CloseConnection on errors.
  void OnWritable();

  /// Appends one response line (newline added) and attempts to flush.
  /// Closes the connection instead if the write buffer would exceed its
  /// cap. Ignored once the connection is closed.
  void EnqueueResponse(const std::string& line);

  /// Marks one dispatched request as answered (pairs with OnLine).
  void SettleRequest();

  /// Stops consuming input (drain mode / after a framing error): bytes the
  /// peer sends are left in the kernel buffer and never parsed.
  void StopReading() { stop_reading_ = true; }

  /// Checks the idle and slow-loris clocks. Returns true and sets *reason
  /// when the connection should be reaped.
  bool TimedOut(std::chrono::steady_clock::time_point now,
                CloseReason* reason) const;

  /// True when nothing is outstanding: no dispatched-but-unanswered
  /// requests and an empty write buffer. Combined by the loop with
  /// peer_eof()/close_after_flush()/draining to decide when to close.
  bool Settled() const {
    return pending_requests_ == 0 && write_buffer_.size() == write_offset_;
  }
  bool peer_eof() const { return peer_eof_; }
  bool close_after_flush() const { return close_after_flush_; }
  size_t pending_requests() const { return pending_requests_; }

  /// True while a read chunk is being sliced into lines. An inline
  /// response can make the connection look Settled() between two pipelined
  /// lines of the same chunk; close decisions must wait the slicing out.
  bool ingesting() const { return ingesting_; }

  /// Marked by the loop when the connection is condemned; late events and
  /// responses for it are dropped.
  bool closed() const { return closed_; }
  void MarkClosed() { closed_ = true; }

 private:
  /// Slices `data` into lines, forwarding each to the host. Returns false
  /// when the connection was closed while handling a line. Sets ingesting_
  /// for the duration (see ingesting()).
  bool IngestBytes(const char* data, size_t size);
  /// The slicing loop behind IngestBytes.
  bool IngestLines(const char* data, size_t size);
  /// Handles a request line longer than max_line_bytes: answers with one
  /// error record and condemns the connection (close after flush).
  void HandleOversizedLine();
  /// Writes buffered bytes until EAGAIN; returns false when the connection
  /// was closed by a write error.
  bool Flush();

  int fd_;
  uint64_t id_;
  ConnectionLimits limits_;
  ConnectionHost* host_;

  std::string read_buffer_;   ///< current partial line (bounded)
  std::string write_buffer_;  ///< unsent response bytes (bounded)
  size_t write_offset_ = 0;   ///< prefix of write_buffer_ already sent
  size_t pending_requests_ = 0;

  bool peer_eof_ = false;
  bool stop_reading_ = false;
  bool close_after_flush_ = false;
  bool closed_ = false;
  bool ingesting_ = false;

  std::chrono::steady_clock::time_point last_activity_;
  std::chrono::steady_clock::time_point partial_line_since_{};
};

}  // namespace stmaker::net

#endif  // STMAKER_NET_CONNECTION_H_
