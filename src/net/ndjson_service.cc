#include "net/ndjson_service.h"

#include <cctype>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <utility>

#include "common/strings.h"
#include "common/trace.h"

namespace stmaker::net {

namespace {

/// Anchored at static-init time, so `process.uptime_ms` measures from
/// (effectively) process start rather than first stats probe.
const std::chrono::steady_clock::time_point g_process_start =
    std::chrono::steady_clock::now();

/// Parses exactly `count` comma-separated doubles ("a,b,c") into `out`.
/// Rejects trailing characters, so a malformed bbox/window string fails
/// loudly instead of truncating.
bool ParseDoubleList(const std::string& text, size_t count, double* out) {
  const char* p = text.c_str();
  for (size_t i = 0; i < count; ++i) {
    char* end = nullptr;
    out[i] = std::strtod(p, &end);
    if (end == p) return false;
    // strtod accepts "nan"/"inf"/overflowing exponents; a bbox corner or
    // window endpoint must be a real coordinate, and downstream grid math
    // assumes finiteness.
    if (!std::isfinite(out[i])) return false;
    p = end;
    if (i + 1 < count) {
      if (*p != ',') return false;
      ++p;
    }
  }
  return *p == '\0';
}

/// Saturating double→long long for client-supplied numeric fields: the
/// raw cast is UB outside the target range, and strtod happily produces
/// 1e300 from the wire. Non-finite values are rejected at parse time
/// (ParseFlatJson); the NaN branch is defense in depth.
long long ClampLL(double v, long long lo, long long hi) {
  if (std::isnan(v)) return 0;
  if (v <= static_cast<double>(lo)) return lo;
  if (v >= static_cast<double>(hi)) return hi;
  return static_cast<long long>(v);
}

/// Deadlines are clamped well inside the chrono range so converting to the
/// steady-clock duration (nanoseconds on this platform) and adding to
/// now() cannot overflow. ±11.5 days is far beyond any sane request
/// deadline.
constexpr long long kMaxDeadlineMs = 1'000'000'000;

}  // namespace

NdjsonService::NdjsonService(STMaker* maker,
                             const std::vector<RawTrajectory>* corpus,
                             const NdjsonServiceOptions& options)
    : maker_(maker),
      corpus_(corpus),
      options_(options),
      registry_(MetricsRegistry::Global()),
      c_requests_(registry_.counter("serve.requests")),
      c_malformed_(registry_.counter("serve.malformed")),
      c_stats_requests_(registry_.counter("serve.stats_requests")),
      c_route_requests_(registry_.counter("serve.route_requests")),
      c_reload_requests_(registry_.counter("serve.reload_requests")),
      c_similar_requests_(registry_.counter("serve.similar_requests")),
      c_query_requests_(registry_.counter("serve.query_requests")),
      c_watchdog_cancelled_(registry_.counter("serve.watchdog_cancelled")),
      pool_(options.threads) {
  // Watchdog: cancels admitted requests still running past their deadline
  // and logs the overrun. The library's own deadline checks normally fire
  // first; the watchdog is the backstop for code between check points.
  watchdog_ = std::thread([this] { WatchdogMain(); });
}

NdjsonService::NdjsonService(ModelManager* manager,
                             const NdjsonServiceOptions& options)
    : manager_(manager),
      maker_(nullptr),
      corpus_(nullptr),
      options_(options),
      registry_(MetricsRegistry::Global()),
      c_requests_(registry_.counter("serve.requests")),
      c_malformed_(registry_.counter("serve.malformed")),
      c_stats_requests_(registry_.counter("serve.stats_requests")),
      c_route_requests_(registry_.counter("serve.route_requests")),
      c_reload_requests_(registry_.counter("serve.reload_requests")),
      c_similar_requests_(registry_.counter("serve.similar_requests")),
      c_query_requests_(registry_.counter("serve.query_requests")),
      c_watchdog_cancelled_(registry_.counter("serve.watchdog_cancelled")),
      pool_(options.threads) {
  watchdog_ = std::thread([this] { WatchdogMain(); });
}

NdjsonService::PinnedModel NdjsonService::Pin() const {
  if (manager_ == nullptr) {
    return PinnedModel{maker_, corpus_, 0, nullptr};
  }
  std::shared_ptr<const ModelSnapshot> snapshot = manager_->Current();
  return PinnedModel{snapshot->maker.get(), &snapshot->trajectories,
                     snapshot->version, std::move(snapshot)};
}

NdjsonService::~NdjsonService() {
  Drain();
  shutting_down_.store(true, std::memory_order_relaxed);
  if (watchdog_.joinable()) watchdog_.join();
}

void NdjsonService::Drain() { pool_.Wait(); }

void NdjsonService::WatchdogMain() {
  while (!shutting_down_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      auto now = RequestContext::Clock::now();
      for (auto& [token, req] : inflight_) {
        if (now >= req.deadline && !req.cancel.cancelled()) {
          double over_ms =
              std::chrono::duration<double, std::milli>(now - req.deadline)
                  .count();
          std::fprintf(stderr,
                       "stmaker_cli: watchdog: request %ld is %.1f ms over "
                       "deadline, cancelling\n",
                       req.id, over_ms);
          req.cancel.Cancel();
          c_watchdog_cancelled_.Increment();
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// Mirrors the maker's LRU cache stats into gauges so a `stats` snapshot
// carries them alongside the registry-native counters.
void NdjsonService::MirrorCacheGauges(STMaker* maker) {
  CacheStats cal = maker->CalibrationCacheStats();
  CacheStats route = maker->RouteCacheStats();
  registry_.gauge("calibration.cache.evictions")
      .Set(static_cast<int64_t>(cal.evictions));
  registry_.gauge("popular_route.cache.evictions")
      .Set(static_cast<int64_t>(route.evictions));
}

std::string NdjsonService::JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string NdjsonService::WireStatusName(StatusCode code) {
  std::string name = StatusCodeName(code);  // "DeadlineExceeded"
  std::string out;
  for (size_t i = 0; i < name.size(); ++i) {
    if (std::isupper(static_cast<unsigned char>(name[i]))) {
      if (i > 0) out += '_';
      out += static_cast<char>(
          std::tolower(static_cast<unsigned char>(name[i])));
    } else {
      out += name[i];
    }
  }
  return out;
}

Result<NdjsonService::FlatJson> NdjsonService::ParseFlatJson(
    const std::string& line) {
  FlatJson fields;
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
  };
  skip_ws();
  if (i >= line.size() || line[i] != '{') {
    return Status::InvalidArgument("request is not a JSON object");
  }
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws();
      if (i >= line.size() || line[i] != '"') {
        return Status::InvalidArgument("expected a quoted field name");
      }
      size_t key_end = line.find('"', i + 1);
      if (key_end == std::string::npos) {
        return Status::InvalidArgument("unterminated field name");
      }
      std::string key = line.substr(i + 1, key_end - i - 1);
      i = key_end + 1;
      skip_ws();
      if (i >= line.size() || line[i] != ':') {
        return Status::InvalidArgument("expected ':' after field name");
      }
      ++i;
      skip_ws();
      if (i < line.size() && line[i] == '"') {
        ++i;
        std::string value;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') {
            if (i + 1 >= line.size()) {
              return Status::InvalidArgument("unterminated escape in field '" +
                                             key + "'");
            }
            switch (line[i + 1]) {
              case '"': value += '"'; break;
              case '\\': value += '\\'; break;
              case '/': value += '/'; break;
              case 'n': value += '\n'; break;
              case 'r': value += '\r'; break;
              case 't': value += '\t'; break;
              default:
                return Status::InvalidArgument(
                    "unsupported escape in field '" + key + "'");
            }
            i += 2;
          } else {
            value += line[i];
            ++i;
          }
        }
        if (i >= line.size()) {
          return Status::InvalidArgument("unterminated string value in field '" +
                                         key + "'");
        }
        ++i;
        fields.strings[key] = std::move(value);
      } else {
        char* end = nullptr;
        double value = std::strtod(line.c_str() + i, &end);
        if (end == line.c_str() + i) {
          return Status::InvalidArgument("field '" + key +
                                         "' wants a number or string value");
        }
        // strtod is laxer than JSON: it accepts "nan", "inf", and turns
        // overflowing exponents into infinities. Handlers cast these
        // fields to integers (trip, k, deadline_ms, ...), where a
        // non-finite double is UB and NaN slips past range checks — so
        // they are rejected here, at the protocol boundary.
        if (!std::isfinite(value)) {
          return Status::InvalidArgument("field '" + key +
                                         "' is not a finite number");
        }
        fields.numbers[key] = value;
        i = static_cast<size_t>(end - line.c_str());
      }
      skip_ws();
      if (i < line.size() && line[i] == ',') {
        ++i;
        continue;
      }
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      return Status::InvalidArgument("expected ',' or '}' in object");
    }
  }
  skip_ws();
  if (i != line.size()) {
    return Status::InvalidArgument("trailing characters after object");
  }
  return fields;
}

Result<std::map<std::string, double>> NdjsonService::ParseFlatJsonNumbers(
    const std::string& line) {
  Result<FlatJson> parsed = ParseFlatJson(line);
  if (!parsed.ok()) return parsed.status();
  if (!parsed->strings.empty()) {
    return Status::InvalidArgument("field '" + parsed->strings.begin()->first +
                                   "' wants a numeric value");
  }
  return std::move(parsed->numbers);
}

std::string NdjsonService::ErrorResponse(long id, const Status& status) {
  return StrFormat("{\"id\": %ld, \"status\": \"%s\", \"error\": \"%s\"}", id,
                   WireStatusName(status.code()).c_str(),
                   JsonEscape(status.message()).c_str());
}

void NdjsonService::HandleStats(long id, const PinnedModel& model,
                                const ResponseFn& respond) {
  // Answered synchronously on the transport thread: a stats probe must
  // succeed even when the pool is saturated (it doubles as the
  // readiness/health check in the serve tests).
  c_stats_requests_.Increment();
  MirrorCacheGauges(model.maker);
  registry_.gauge("process.uptime_ms")
      .Set(static_cast<int64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - g_process_start)
              .count()));
  std::string snapshot = registry_.Snapshot().ToJson();
  if (model.snapshot != nullptr) {
    respond(StrFormat("{\"id\": %ld, \"status\": \"ok\", \"stats\": %s, "
                      "\"model_version\": %llu}",
                      id, snapshot.c_str(),
                      static_cast<unsigned long long>(model.version)));
  } else {
    respond(StrFormat("{\"id\": %ld, \"status\": \"ok\", \"stats\": %s}", id,
                      snapshot.c_str()));
  }
}

void NdjsonService::HandleReload(long id, const FlatJson& fields,
                                 ResponseFn respond) {
  c_reload_requests_.Increment();
  if (manager_ == nullptr) {
    respond(ErrorResponse(
        id, Status::FailedPrecondition(
                "reload unavailable: this server runs a fixed model")));
    return;
  }
  std::string prefix;
  auto it = fields.strings.find("model_dir");
  if (it != fields.strings.end()) prefix = it->second;
  // The response fires from the reloader thread once this reload actually
  // ran (FIFO, never interleaved with another) — so "ok" means the swap
  // happened and `model_version` is the version now serving. The callback
  // must stay valid past this service's lifetime (the manager cancels
  // leftovers on shutdown), so it captures only the id and the
  // transport's ResponseFn — never `this`.
  manager_->RequestReload(
      std::move(prefix),
      [id, respond = std::move(respond)](const Status& status,
                                         uint64_t version) {
        if (status.ok()) {
          respond(StrFormat("{\"id\": %ld, \"status\": \"ok\", \"reloaded\": "
                            "1, \"model_version\": %llu}",
                            id, static_cast<unsigned long long>(version)));
        } else {
          respond(ErrorResponse(id, status));
        }
      });
}

void NdjsonService::HandleRoute(long id, const PinnedModel& model,
                                const std::map<std::string, double>& fields,
                                const ResponseFn& respond) {
  // Answered synchronously on the transport thread: a point query on the
  // routing backend is microseconds under the hierarchy, and keeping it
  // out of the pool means routing probes work even when summarization
  // has the workers saturated.
  c_route_requests_.Increment();
  auto field = [&](const std::string& key, double fallback) {
    auto it = fields.find(key);
    return it == fields.end() ? fallback : it->second;
  };
  if (fields.count("src") == 0 || fields.count("dst") == 0) {
    respond(ErrorResponse(
        id, Status::InvalidArgument(
                "route request lacks 'src' and/or 'dst' fields")));
    return;
  }
  RequestContext route_ctx;
  double route_deadline_ms =
      field("deadline_ms", static_cast<double>(options_.default_deadline_ms));
  if (route_deadline_ms != 0) {
    route_ctx.deadline =
        RequestContext::Clock::now() +
        std::chrono::milliseconds(
            ClampLL(route_deadline_ms, -kMaxDeadlineMs, kMaxDeadlineMs));
  }
  route_ctx.max_node_expansions = static_cast<size_t>(ClampLL(
      field("max_expansions", static_cast<double>(options_.max_expansions)), 0,
      std::numeric_limits<long long>::max()));
  Result<Path> path = model.maker->RoadRoute(
      static_cast<NodeId>(ClampLL(field("src", -1),
                                  std::numeric_limits<long long>::min(),
                                  std::numeric_limits<long long>::max())),
      static_cast<NodeId>(ClampLL(field("dst", -1),
                                  std::numeric_limits<long long>::min(),
                                  std::numeric_limits<long long>::max())),
      &route_ctx);
  if (!path.ok()) {
    respond(ErrorResponse(id, path.status()));
    return;
  }
  if (model.snapshot != nullptr) {
    respond(StrFormat("{\"id\": %ld, \"status\": \"ok\", \"cost\": %.3f, "
                      "\"hops\": %zu, \"model_version\": %llu}",
                      id, path->cost, path->edges.size(),
                      static_cast<unsigned long long>(model.version)));
  } else {
    respond(StrFormat(
        "{\"id\": %ld, \"status\": \"ok\", \"cost\": %.3f, \"hops\": %zu}", id,
        path->cost, path->edges.size()));
  }
}

void NdjsonService::HandleSummarize(long id, PinnedModel model,
                                    const std::map<std::string, double>& fields,
                                    ResponseFn respond) {
  auto field = [&](const std::string& key, double fallback) {
    auto it = fields.find(key);
    return it == fields.end() ? fallback : it->second;
  };
  double trip_value = field("trip", 0);
  if (trip_value < 0 || trip_value >= model.corpus->size()) {
    respond(ErrorResponse(
        id, Status::OutOfRange(StrFormat("trip %.0f out of range (corpus has "
                                         "%zu)",
                                         trip_value, model.corpus->size()))));
    return;
  }
  size_t trip = static_cast<size_t>(trip_value);

  SummaryOptions options;
  options.k = static_cast<int>(ClampLL(field("k", 0),
                                       std::numeric_limits<int>::min(),
                                       std::numeric_limits<int>::max()));
  options.eta = field("eta", 0.2);

  // The deadline starts at admission, so queueing time counts against
  // it — a request that waited out its budget in the queue fails fast
  // instead of running anyway.
  RequestContext ctx;
  double deadline_ms =
      field("deadline_ms", static_cast<double>(options_.default_deadline_ms));
  if (deadline_ms != 0) {
    ctx.deadline = RequestContext::Clock::now() +
                   std::chrono::milliseconds(ClampLL(deadline_ms,
                                                     -kMaxDeadlineMs,
                                                     kMaxDeadlineMs));
  }
  ctx.max_node_expansions = static_cast<size_t>(ClampLL(
      field("max_expansions", static_cast<double>(options_.max_expansions)), 0,
      std::numeric_limits<long long>::max()));

  // A deadline already expired at admission fails right here, before
  // the request can take a pool slot or race the watchdog — this keeps
  // non-positive deadline_ms a *deterministic* deadline_exceeded.
  if (Status at_admission = ctx.Check(); !at_admission.ok()) {
    respond(ErrorResponse(id, at_admission));
    return;
  }

  uint64_t token;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    token = next_token_++;
    InflightRequest req;
    req.id = id;
    req.deadline = ctx.has_deadline()
                       ? ctx.deadline
                       : RequestContext::Clock::time_point::max();
    inflight_.emplace(token, req);
    ctx.cancel = inflight_[token].cancel.token();
  }
  // When a trace log is attached every admitted request carries its own
  // Trace; the span tree is appended (one NDJSON line, under trace_mu_ so
  // lines never interleave) after the response is sent. Tracing only
  // observes — the response bytes are identical either way.
  std::shared_ptr<Trace> trace;
  if (trace_log_ != nullptr) trace = std::make_shared<Trace>();
  ctx.trace = trace.get();
  // `respond` is captured by copy, not moved: when TrySubmit rejects, the
  // task (and a moved-into capture with it) is destroyed before the
  // rejection branch below still needs to answer the client.
  // `model` rides into the task by value: the pinned snapshot stays alive
  // until this request responds, no matter how many swaps land meanwhile.
  bool admitted = pool_.TrySubmit(
      [this, id, trip, options, ctx, token, trace, respond, model] {
        Result<Summary> summary =
            model.maker->Summarize((*model.corpus)[trip], options, &ctx);
        if (summary.ok()) {
          if (model.snapshot != nullptr) {
            respond(StrFormat("{\"id\": %ld, \"status\": \"ok\", "
                              "\"partitions\": %zu, \"text\": \"%s\", "
                              "\"model_version\": %llu}",
                              id, summary->partitions.size(),
                              JsonEscape(summary->text).c_str(),
                              static_cast<unsigned long long>(model.version)));
          } else {
            respond(StrFormat("{\"id\": %ld, \"status\": \"ok\", "
                              "\"partitions\": %zu, \"text\": \"%s\"}",
                              id, summary->partitions.size(),
                              JsonEscape(summary->text).c_str()));
          }
        } else {
          respond(ErrorResponse(id, summary.status()));
        }
        if (trace_log_ != nullptr && trace != nullptr) {
          std::string json = trace->ToJson();
          std::lock_guard<std::mutex> lock(trace_mu_);
          std::fprintf(trace_log_, "{\"id\": %ld, \"trace\": %s}\n", id,
                       json.c_str());
          std::fflush(trace_log_);
        }
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.erase(token);
      },
      static_cast<size_t>(options_.max_inflight));
  if (!admitted) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(token);
    }
    respond(ErrorResponse(
        id, Status::ResourceExhausted(
                StrFormat("server at capacity (%ld requests in flight)",
                          options_.max_inflight))));
  }
}

void NdjsonService::SubmitPooled(
    long id, const std::map<std::string, double>& fields,
    const ResponseFn& respond,
    std::function<void(const RequestContext&)> body) {
  auto field = [&](const std::string& key, double fallback) {
    auto it = fields.find(key);
    return it == fields.end() ? fallback : it->second;
  };
  // Same admission contract as HandleSummarize: the deadline starts here,
  // queueing counts against it, and an already-expired deadline fails
  // deterministically before taking a pool slot.
  RequestContext ctx;
  double deadline_ms =
      field("deadline_ms", static_cast<double>(options_.default_deadline_ms));
  if (deadline_ms != 0) {
    ctx.deadline = RequestContext::Clock::now() +
                   std::chrono::milliseconds(ClampLL(deadline_ms,
                                                     -kMaxDeadlineMs,
                                                     kMaxDeadlineMs));
  }
  if (Status at_admission = ctx.Check(); !at_admission.ok()) {
    respond(ErrorResponse(id, at_admission));
    return;
  }
  uint64_t token;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    token = next_token_++;
    InflightRequest req;
    req.id = id;
    req.deadline = ctx.has_deadline()
                       ? ctx.deadline
                       : RequestContext::Clock::time_point::max();
    inflight_.emplace(token, req);
    ctx.cancel = inflight_[token].cancel.token();
  }
  // `body` owns its own respond copy; this function only answers the
  // admission failures itself.
  bool admitted = pool_.TrySubmit(
      [this, ctx, token, body = std::move(body)] {
        body(ctx);
        std::lock_guard<std::mutex> lock(inflight_mu_);
        inflight_.erase(token);
      },
      static_cast<size_t>(options_.max_inflight));
  if (!admitted) {
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(token);
    }
    respond(ErrorResponse(
        id, Status::ResourceExhausted(
                StrFormat("server at capacity (%ld requests in flight)",
                          options_.max_inflight))));
  }
}

void NdjsonService::HandleSimilar(long id, PinnedModel model,
                                  const std::map<std::string, double>& fields,
                                  ResponseFn respond) {
  c_similar_requests_.Increment();
  auto field = [&](const std::string& key, double fallback) {
    auto it = fields.find(key);
    return it == fields.end() ? fallback : it->second;
  };
  if (fields.count("trip") == 0) {
    respond(ErrorResponse(
        id, Status::InvalidArgument("similar request lacks a 'trip' field")));
    return;
  }
  double trip_value = field("trip", 0);
  if (trip_value < 0 || trip_value >= model.corpus->size()) {
    respond(ErrorResponse(
        id, Status::OutOfRange(StrFormat("trip %.0f out of range (corpus has "
                                         "%zu)",
                                         trip_value, model.corpus->size()))));
    return;
  }
  size_t trip = static_cast<size_t>(trip_value);
  size_t k = static_cast<size_t>(
      ClampLL(field("k", 5), 0, std::numeric_limits<long long>::max()));
  SubmitPooled(
      id, fields, respond,
      [id, trip, k, respond, model](const RequestContext& ctx) {
        Result<std::vector<TrajectoryIndex::Match>> matches =
            model.maker->SimilarTrips(*model.corpus, trip, k, &ctx);
        if (!matches.ok()) {
          respond(ErrorResponse(id, matches.status()));
          return;
        }
        std::string items;
        for (const TrajectoryIndex::Match& m : *matches) {
          if (!items.empty()) items += ", ";
          items += StrFormat("{\"trip\": %u, \"score\": %.6f}", m.trip,
                             m.score);
        }
        if (model.snapshot != nullptr) {
          respond(StrFormat("{\"id\": %ld, \"status\": \"ok\", \"trip\": %zu, "
                            "\"results\": [%s], \"model_version\": %llu}",
                            id, trip, items.c_str(),
                            static_cast<unsigned long long>(model.version)));
        } else {
          respond(StrFormat("{\"id\": %ld, \"status\": \"ok\", \"trip\": %zu, "
                            "\"results\": [%s]}",
                            id, trip, items.c_str()));
        }
      });
}

void NdjsonService::HandleQuery(long id, PinnedModel model,
                                const FlatJson& fields, ResponseFn respond) {
  c_query_requests_.Increment();
  auto bbox_it = fields.strings.find("bbox");
  if (bbox_it == fields.strings.end()) {
    respond(ErrorResponse(
        id, Status::InvalidArgument(
                "query request lacks a 'bbox' field (\"x0,y0,x1,y1\")")));
    return;
  }
  double corner[4];
  if (!ParseDoubleList(bbox_it->second, 4, corner)) {
    respond(ErrorResponse(
        id, Status::InvalidArgument("bbox wants \"x0,y0,x1,y1\", got \"" +
                                    bbox_it->second + "\"")));
    return;
  }
  // Extend() normalizes, so the two corners may come in any order.
  BoundingBox box;
  box.Extend(Vec2{corner[0], corner[1]});
  box.Extend(Vec2{corner[2], corner[3]});
  std::optional<std::pair<double, double>> window;
  auto window_it = fields.strings.find("window");
  if (window_it != fields.strings.end()) {
    double t[2];
    if (!ParseDoubleList(window_it->second, 2, t)) {
      respond(ErrorResponse(
          id, Status::InvalidArgument("window wants \"t0,t1\", got \"" +
                                      window_it->second + "\"")));
      return;
    }
    window = std::make_pair(t[0], t[1]);
  }
  SubmitPooled(
      id, fields.numbers, respond,
      [id, box, window, respond, model](const RequestContext& ctx) {
        Result<std::vector<uint32_t>> trips =
            model.maker->QueryRegion(*model.corpus, box, window, &ctx);
        if (!trips.ok()) {
          respond(ErrorResponse(id, trips.status()));
          return;
        }
        std::string items;
        for (uint32_t t : *trips) {
          if (!items.empty()) items += ", ";
          items += StrFormat("%u", t);
        }
        if (model.snapshot != nullptr) {
          respond(StrFormat("{\"id\": %ld, \"status\": \"ok\", \"count\": "
                            "%zu, \"trips\": [%s], \"model_version\": %llu}",
                            id, trips->size(), items.c_str(),
                            static_cast<unsigned long long>(model.version)));
        } else {
          respond(StrFormat("{\"id\": %ld, \"status\": \"ok\", \"count\": "
                            "%zu, \"trips\": [%s]}",
                            id, trips->size(), items.c_str()));
        }
      });
}

void NdjsonService::HandleLine(const std::string& line, ResponseFn respond) {
  c_requests_.Increment();
  Result<FlatJson> parsed = ParseFlatJson(line);
  if (!parsed.ok()) {
    c_malformed_.Increment();
    respond(ErrorResponse(-1, parsed.status()));
    return;
  }
  const FlatJson& fields = *parsed;
  const std::map<std::string, double>& numbers = fields.numbers;
  auto it = numbers.find("id");
  long id = it == numbers.end()
                ? -1
                : static_cast<long>(ClampLL(it->second,
                                            std::numeric_limits<long>::min(),
                                            std::numeric_limits<long>::max()));
  if (numbers.count("reload") != 0) {
    HandleReload(id, fields, std::move(respond));
    return;
  }
  // Every non-admin request pins its model exactly once, here, and keeps
  // that snapshot for its whole lifetime.
  PinnedModel model = Pin();
  if (numbers.count("stats") != 0) {
    HandleStats(id, model, respond);
    return;
  }
  if (numbers.count("route") != 0) {
    HandleRoute(id, model, numbers, respond);
    return;
  }
  // The retrieval verbs also carry a 'trip' field, so they dispatch
  // before the bare-'trip' summarize fallthrough.
  if (numbers.count("similar") != 0) {
    HandleSimilar(id, std::move(model), numbers, std::move(respond));
    return;
  }
  if (numbers.count("query") != 0) {
    HandleQuery(id, std::move(model), fields, std::move(respond));
    return;
  }
  if (numbers.count("trip") == 0) {
    respond(ErrorResponse(
        id, Status::InvalidArgument("request lacks a 'trip' field")));
    return;
  }
  HandleSummarize(id, std::move(model), numbers, std::move(respond));
}

}  // namespace stmaker::net
