#ifndef STMAKER_TRAJ_UTURN_H_
#define STMAKER_TRAJ_UTURN_H_

/// \file
/// U-turn detection over raw trajectories.

#include <vector>

#include "traj/trajectory.h"

namespace stmaker {

/// A detected U-turn: a sharp (~180°) reversal of travel direction
/// (Sec. III-B).
struct UTurn {
  Vec2 pos;         ///< Location of the reversal.
  double time = 0;  ///< Timestamp of the reversal.
};

/// Detection thresholds. Headings are measured over motion legs of at least
/// `min_leg_m` so that GPS noise at low speed does not fabricate reversals;
/// two consecutive legs whose headings differ by more than
/// `heading_threshold_deg` constitute a U-turn. Reversals closer than
/// `merge_window_s` in time are merged into one event.
struct UTurnOptions {
  double min_leg_m = 60.0;
  double heading_threshold_deg = 150.0;
  double merge_window_s = 60.0;
};

/// Detects U-turns in a raw trajectory.
std::vector<UTurn> DetectUTurns(const RawTrajectory& trajectory,
                                const UTurnOptions& options);

/// U-turns whose timestamp falls in the half-open window [t0, t1).
std::vector<UTurn> UTurnsInWindow(const std::vector<UTurn>& uturns, double t0,
                                  double t1);

}  // namespace stmaker

#endif  // STMAKER_TRAJ_UTURN_H_
