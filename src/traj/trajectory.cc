#include "traj/trajectory.h"

#include <cmath>

namespace stmaker {

double TimeOfDaySeconds(double absolute_time) {
  double tod = std::fmod(absolute_time, kSecondsPerDay);
  if (tod < 0) tod += kSecondsPerDay;
  return tod;
}

}  // namespace stmaker
