#include "traj/stay_point.h"

#include "common/check.h"

namespace stmaker {

std::vector<StayPoint> DetectStayPoints(const RawTrajectory& trajectory,
                                        const StayPointOptions& options) {
  STMAKER_CHECK(options.distance_threshold_m > 0);
  STMAKER_CHECK(options.time_threshold_s > 0);
  const auto& samples = trajectory.samples;
  std::vector<StayPoint> stays;
  size_t i = 0;
  while (i < samples.size()) {
    // Expand j while every fix stays within the disc around fix i.
    size_t j = i + 1;
    while (j < samples.size() &&
           Distance(samples[j].pos, samples[i].pos) <=
               options.distance_threshold_m) {
      ++j;
    }
    // Fixes i..j-1 are inside the disc.
    double duration = samples[j - 1].time - samples[i].time;
    if (j - i >= 2 && duration >= options.time_threshold_s) {
      StayPoint sp;
      Vec2 sum{0, 0};
      for (size_t k = i; k < j; ++k) sum = sum + samples[k].pos;
      sp.pos = sum * (1.0 / static_cast<double>(j - i));
      sp.arrive = samples[i].time;
      sp.leave = samples[j - 1].time;
      stays.push_back(sp);
      i = j;
    } else {
      ++i;
    }
  }
  return stays;
}

std::vector<StayPoint> StayPointsInWindow(const std::vector<StayPoint>& stays,
                                          double t0, double t1) {
  std::vector<StayPoint> out;
  for (const StayPoint& s : stays) {
    if (s.arrive >= t0 && s.arrive < t1) out.push_back(s);
  }
  return out;
}

}  // namespace stmaker
