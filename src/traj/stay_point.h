#ifndef STMAKER_TRAJ_STAY_POINT_H_
#define STMAKER_TRAJ_STAY_POINT_H_

/// \file
/// Stay-point detection over raw trajectories.

#include <vector>

#include "traj/trajectory.h"

namespace stmaker {

/// A detected stay: the object lingered within a small disc for a while
/// (traffic light, jam, temporary parking — Sec. III-B).
struct StayPoint {
  Vec2 pos;           ///< Centroid of the participating fixes.
  double arrive = 0;  ///< Timestamp of the first fix of the stay.
  double leave = 0;   ///< Timestamp of the last fix of the stay.

  double Duration() const { return leave - arrive; }
};

/// Detection thresholds. A stay is a maximal run of fixes all within
/// `distance_threshold_m` of the run's first fix, spanning at least
/// `time_threshold_s`.
struct StayPointOptions {
  double distance_threshold_m = 80.0;
  double time_threshold_s = 90.0;
};

/// \brief Classic stay-point detection (Li/Zheng et al. style) over a raw
/// trajectory.
///
/// Works for both time- and distance-based sampling: with sparse distance
/// sampling a stay appears as a large time gap between nearby fixes, which
/// the duration test still catches.
std::vector<StayPoint> DetectStayPoints(const RawTrajectory& trajectory,
                                        const StayPointOptions& options);

/// Stay points whose arrival falls in the half-open time window [t0, t1).
std::vector<StayPoint> StayPointsInWindow(const std::vector<StayPoint>& stays,
                                          double t0, double t1);

}  // namespace stmaker

#endif  // STMAKER_TRAJ_STAY_POINT_H_
