#include "traj/simplify.h"

#include <vector>

#include "common/check.h"
#include "geo/polyline.h"

namespace stmaker {

namespace {

// Iterative Douglas–Peucker over index ranges (recursion replaced with an
// explicit stack so pathological inputs cannot overflow the call stack).
void MarkKept(const std::vector<RawSample>& samples, double tolerance_m,
              std::vector<bool>* keep) {
  std::vector<std::pair<size_t, size_t>> stack;
  stack.emplace_back(0, samples.size() - 1);
  while (!stack.empty()) {
    auto [first, last] = stack.back();
    stack.pop_back();
    if (last <= first + 1) continue;
    double max_d = -1;
    size_t split = first;
    for (size_t i = first + 1; i < last; ++i) {
      double d = PointSegmentDistance(samples[i].pos, samples[first].pos,
                                      samples[last].pos);
      if (d > max_d) {
        max_d = d;
        split = i;
      }
    }
    if (max_d > tolerance_m) {
      (*keep)[split] = true;
      stack.emplace_back(first, split);
      stack.emplace_back(split, last);
    }
  }
}

}  // namespace

RawTrajectory SimplifyTrajectory(const RawTrajectory& trajectory,
                                 double tolerance_m) {
  STMAKER_CHECK(tolerance_m >= 0);
  RawTrajectory out;
  out.traveler = trajectory.traveler;
  const auto& samples = trajectory.samples;
  if (samples.size() <= 2) {
    out.samples = samples;
    return out;
  }
  std::vector<bool> keep(samples.size(), false);
  keep.front() = true;
  keep.back() = true;
  MarkKept(samples, tolerance_m, &keep);
  for (size_t i = 0; i < samples.size(); ++i) {
    if (keep[i]) out.samples.push_back(samples[i]);
  }
  return out;
}

TrajectoryStats ComputeTrajectoryStats(const RawTrajectory& trajectory) {
  TrajectoryStats stats;
  stats.num_fixes = trajectory.size();
  const auto& samples = trajectory.samples;
  for (size_t i = 0; i < samples.size(); ++i) {
    stats.extent.Extend(samples[i].pos);
    if (i > 0) {
      stats.length_m += Distance(samples[i - 1].pos, samples[i].pos);
      stats.max_gap_s = std::max(stats.max_gap_s,
                                 samples[i].time - samples[i - 1].time);
    }
  }
  stats.duration_s = trajectory.Duration();
  stats.mean_speed_kmh =
      stats.duration_s > 0 ? stats.length_m / stats.duration_s * 3.6 : 0;
  return stats;
}

}  // namespace stmaker
