#ifndef STMAKER_TRAJ_CONGESTION_H_
#define STMAKER_TRAJ_CONGESTION_H_

/// \file
/// Time-of-day congestion model shared by the trajectory simulator and
/// the speed features.

namespace stmaker {

/// \brief Time-of-day congestion model shared by the trajectory simulator.
///
/// Congestion intensity in [0, 1]: 0 = free flow (small hours), 1 = worst
/// rush hour. The raw signal behind all the time-of-day effects; exposed so
/// the trajectory simulator can couple detour/U-turn propensity to traffic.
double CongestionIntensity(double time_of_day_s);

/// Returns the multiplicative speed factor (0, 1] applied to the free-flow
/// speed at the given time of day, in seconds since midnight. The profile
/// mirrors urban taxi data: deep dips in the morning (06–10) and evening
/// (16–20) rush hours, moderate daytime congestion, near-free-flow at night —
/// the contrast the paper's Fig. 8 relies on.
double CongestionSpeedFactor(double time_of_day_s);

/// Probability that a vehicle is held at a signalized intersection at the
/// given time of day. Higher during congested hours (more red phases hit,
/// queue spill-back), low at night.
double IntersectionStopProbability(double time_of_day_s);

/// Mean duration of an intersection hold, seconds, at the given time of day.
double IntersectionStopMeanSeconds(double time_of_day_s);

/// The 12 two-hour buckets used throughout the evaluation (Fig. 8);
/// bucket i covers [2i, 2i+2) hours. Returns i in [0, 12).
int TwoHourBucket(double time_of_day_s);

}  // namespace stmaker

#endif  // STMAKER_TRAJ_CONGESTION_H_
