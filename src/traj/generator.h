#ifndef STMAKER_TRAJ_GENERATOR_H_
#define STMAKER_TRAJ_GENERATOR_H_

/// \file
/// Synthetic trajectory and trip-corpus generator over a road network
/// and landmark set.

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "landmark/landmark_index.h"
#include "roadnet/road_network.h"
#include "roadnet/shortest_path.h"
#include "traj/trajectory.h"

namespace stmaker {

/// How a trip's GPS track is sampled into a raw trajectory. The paper's
/// Fig. 2 motivates supporting both: the same route must calibrate to the
/// same symbolic trajectory regardless of the strategy.
enum class SamplingStrategy {
  kUniformTime,      ///< A fix every `time_sample_interval_s` seconds.
  kUniformDistance,  ///< A fix every `distance_sample_interval_m` meters.
};

/// Simulator knobs. All randomness flows from explicit seeds/streams.
struct TrajectoryGeneratorOptions {
  double min_od_distance_m = 3000.0;   ///< Minimum origin–destination bird
                                       ///< distance.
  double route_cost_noise = 0.06;      ///< Per-edge route-choice diversity.
  double detour_probability = 0.18;    ///< Trip routes via a random midpoint.
  double uturn_probability = 0.08;     ///< Trip contains a U-turn manoeuvre.
  double long_stop_probability = 0.06; ///< Trip contains a long stopover.
  double long_stop_mean_s = 240.0;
  double gps_noise_m = 6.0;
  double time_sample_interval_s = 10.0;
  double distance_sample_interval_m = 80.0;
  double distance_sampling_fraction = 0.3;  ///< Trips using distance sampling.
  double driver_speed_sigma = 0.08;    ///< Driver-to-driver speed spread.
  double stay_count_threshold_s = 90.0;  ///< A hold this long counts as a
                                         ///< ground-truth stay event.
};

/// Ground-truth event counts of a generated trip, for tests and the Fig. 11
/// reader model.
struct TripEvents {
  int num_stays = 0;        ///< Holds of at least stay_count_threshold_s.
  double total_stay_s = 0;  ///< Summed duration of those holds.
  double total_hold_s = 0;  ///< Summed duration of ALL holds, however short
                            ///< (red lights, queueing). Lets evaluators tell
                            ///< genuine stays apart from crawl artifacts.
  int num_uturns = 0;
  bool detour = false;
};

/// A generated trip: the raw trajectory plus the ground truth it was
/// simulated from.
struct GeneratedTrip {
  RawTrajectory raw;
  std::vector<NodeId> route_nodes;
  std::vector<EdgeId> route_edges;
  LandmarkId origin_landmark = -1;
  LandmarkId destination_landmark = -1;
  double start_time = 0;
  SamplingStrategy sampling = SamplingStrategy::kUniformTime;
  TripEvents events;
};

/// \brief Synthetic taxi-trip simulator (the stand-in for the paper's
/// Beijing corpus; DESIGN.md §2).
///
/// A trip picks an origin/destination pair of junction landmarks, routes
/// over the network with perturbed travel-time costs (plus occasional
/// detours and U-turn manoeuvres), then simulates motion with per-grade
/// free-flow speeds scaled by the time-of-day congestion model, holds at
/// signalized intersections, and GPS sampling noise.
class TrajectoryGenerator {
 public:
  /// `network` and `landmarks` must outlive the generator.
  TrajectoryGenerator(const RoadNetwork* network,
                      const LandmarkIndex* landmarks,
                      const TrajectoryGeneratorOptions& options =
                          TrajectoryGeneratorOptions());

  /// Generates one trip starting at absolute time `start_time`, drawing all
  /// randomness from `rng`. Fails if no suitable OD pair or route exists.
  Result<GeneratedTrip> GenerateTrip(double start_time, Random* rng) const;

  /// Generates a corpus of `count` trips from `num_travelers` vehicles,
  /// spread over `num_days` days with a realistic time-of-day volume
  /// profile. Trips that fail to route are skipped (the corpus may be
  /// slightly smaller than `count` on pathological maps).
  std::vector<GeneratedTrip> GenerateCorpus(size_t count, int num_travelers,
                                            int num_days,
                                            uint64_t seed) const;

  /// Draws a start time-of-day (seconds) from the taxi volume profile:
  /// busy daytime and rush hours, quiet small hours.
  static double SampleStartTimeOfDay(Random* rng);

 private:
  const RoadNetwork* network_;
  const LandmarkIndex* landmarks_;
  TrajectoryGeneratorOptions options_;
  ShortestPathRouter router_;
  std::vector<LandmarkId> junction_landmarks_;  // OD candidates.
};

}  // namespace stmaker

#endif  // STMAKER_TRAJ_GENERATOR_H_
