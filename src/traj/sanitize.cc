#include "traj/sanitize.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace stmaker {

const char* PointIssueName(PointIssue issue) {
  switch (issue) {
    case PointIssue::kNonFinite: return "non-finite";
    case PointIssue::kOutOfRange: return "out-of-range";
    case PointIssue::kNonMonotonicTime: return "non-monotonic-time";
    case PointIssue::kDuplicate: return "duplicate";
    case PointIssue::kTeleport: return "teleport";
  }
  return "unknown";
}

std::string SanitizeReport::ToString() const {
  if (clean()) return StrFormat("clean (%zu points)", total_points);
  std::vector<std::string> parts;
  for (size_t i = 0; i < kNumPointIssues; ++i) {
    if (issue_counts[i] == 0) continue;
    parts.push_back(StrFormat("%s: %zu",
                              PointIssueName(static_cast<PointIssue>(i)),
                              issue_counts[i]));
  }
  return StrFormat("%zu/%zu points dropped (%s)", dropped_points,
                   total_points, Join(parts, ", ").c_str());
}

namespace {

/// First defect of `sample` against the last accepted sample (`prev`,
/// null for the first point), or no value when the sample is acceptable.
bool DiagnosePoint(const RawSample& sample, const RawSample* prev,
                   const SanitizeOptions& options, PointIssue* issue) {
  if (!std::isfinite(sample.pos.x) || !std::isfinite(sample.pos.y) ||
      !std::isfinite(sample.time)) {
    *issue = PointIssue::kNonFinite;
    return true;
  }
  if (std::fabs(sample.pos.x) > options.max_abs_coord_m ||
      std::fabs(sample.pos.y) > options.max_abs_coord_m) {
    *issue = PointIssue::kOutOfRange;
    return true;
  }
  if (prev == nullptr) return false;
  if (sample.time < prev->time) {
    *issue = PointIssue::kNonMonotonicTime;
    return true;
  }
  const double dx = sample.pos.x - prev->pos.x;
  const double dy = sample.pos.y - prev->pos.y;
  const double dist = std::sqrt(dx * dx + dy * dy);
  const double dt = sample.time - prev->time;
  if (dt == 0 && dist == 0) {
    *issue = PointIssue::kDuplicate;
    return true;
  }
  if (options.max_speed_mps > 0) {
    // Judge the displacement over at least min_speed_dt_s so that
    // sub-second sampling jitter never reads as an infinite-speed jump;
    // dt == 0 with a displacement beyond the window is still a teleport.
    const double window = std::max(dt, options.min_speed_dt_s);
    if (dist > options.max_speed_mps * window) {
      *issue = PointIssue::kTeleport;
      return true;
    }
  }
  return false;
}

}  // namespace

Result<RawTrajectory> SanitizeTrajectory(const RawTrajectory& raw,
                                         const SanitizeOptions& options,
                                         SanitizeReport* report) {
  SanitizeReport local;
  SanitizeReport& rep = report != nullptr ? *report : local;
  rep = SanitizeReport();
  rep.total_points = raw.samples.size();

  RawTrajectory out;
  out.traveler = raw.traveler;
  out.samples.reserve(raw.samples.size());

  for (size_t i = 0; i < raw.samples.size(); ++i) {
    const RawSample& sample = raw.samples[i];
    const RawSample* prev = out.samples.empty() ? nullptr : &out.samples.back();
    PointIssue issue;
    if (!DiagnosePoint(sample, prev, options, &issue)) {
      out.samples.push_back(sample);
      continue;
    }
    ++rep.dropped_points;
    ++rep.issue_counts[static_cast<size_t>(issue)];
    if (rep.diagnostics.size() < options.max_diagnostics) {
      rep.diagnostics.push_back({i, issue});
    }
    if (options.policy == SanitizePolicy::kStrict) {
      return Status::InvalidArgument(StrFormat(
          "sample %zu is %s (strict sanitization rejects the trajectory)", i,
          PointIssueName(issue)));
    }
  }
  return out;
}

}  // namespace stmaker
