#include "traj/uturn.h"

#include "common/check.h"

namespace stmaker {

std::vector<UTurn> DetectUTurns(const RawTrajectory& trajectory,
                                const UTurnOptions& options) {
  STMAKER_CHECK(options.min_leg_m > 0);
  const auto& samples = trajectory.samples;
  std::vector<UTurn> out;
  if (samples.size() < 3) return out;

  // Decimate to motion legs of at least min_leg_m.
  struct Leg {
    size_t end_index;  // sample index at the end of the leg
    double heading;
  };
  std::vector<Leg> legs;
  size_t anchor = 0;
  for (size_t i = 1; i < samples.size(); ++i) {
    Vec2 d = samples[i].pos - samples[anchor].pos;
    if (Norm(d) >= options.min_leg_m) {
      legs.push_back({i, HeadingDegrees(d)});
      anchor = i;
    }
  }

  double last_event_time = -1e18;
  for (size_t k = 1; k < legs.size(); ++k) {
    double diff = HeadingDifference(legs[k - 1].heading, legs[k].heading);
    if (diff >= options.heading_threshold_deg) {
      // The reversal happens at the joint between the two legs.
      const RawSample& joint = samples[legs[k - 1].end_index];
      if (joint.time - last_event_time >= options.merge_window_s) {
        out.push_back({joint.pos, joint.time});
        last_event_time = joint.time;
      }
    }
  }
  return out;
}

std::vector<UTurn> UTurnsInWindow(const std::vector<UTurn>& uturns, double t0,
                                  double t1) {
  std::vector<UTurn> out;
  for (const UTurn& u : uturns) {
    if (u.time >= t0 && u.time < t1) out.push_back(u);
  }
  return out;
}

}  // namespace stmaker
