#ifndef STMAKER_TRAJ_CALIBRATION_H_
#define STMAKER_TRAJ_CALIBRATION_H_

/// \file
/// Anchor-based trajectory calibration (Def. 2/3): rewriting raw fixes
/// into landmark sequences, sampling-rate invariant.

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "common/context.h"
#include "common/lru_cache.h"
#include "common/status.h"
#include "geo/polyline.h"
#include "landmark/landmark_index.h"
#include "traj/trajectory.h"

namespace stmaker {

/// Calibration parameters (anchor-based rewriting, Su et al. SIGMOD'13 [31]).
struct CalibrationOptions {
  /// A landmark is an anchor of the trajectory when its distance to the
  /// trajectory polyline is at most this.
  double anchor_radius_m = 120.0;
  /// Minimum arc-length spacing between consecutive anchors; when two
  /// anchors crowd each other the geometrically closer one wins (ties by
  /// significance).
  double min_spacing_m = 80.0;
  /// Step of the polyline walk used to collect candidate landmarks; must be
  /// positive and is independent of the trajectory's sampling rate, which is
  /// what makes calibration sampling-invariant.
  double scan_step_m = 50.0;
  /// Entries of the bounded LRU memoizing whole calibrations (anchor
  /// collection dominates the cost), keyed by exact trajectory content; 0
  /// disables caching. Train-then-summarize workloads calibrate the same
  /// trajectories twice, and repeated Summarize of popular trips hits too.
  /// The cache never changes results — exact key, exact replay — and is
  /// safe under concurrent Calibrate calls. Internally it is sharded by
  /// key hash (capacity split across shards) so that parallel ingestion of
  /// distinct trajectories does not serialize on one lock.
  size_t cache_size = 256;
};

/// \brief A calibrated trajectory: the symbolic rewriting plus the geometry
/// needed by downstream feature extraction.
///
/// `arc_positions[i]` is the arc-length position of symbolic.samples[i]
/// along the raw polyline; SegmentSampleRange(i) selects the raw fixes that
/// belong to segment i (between landmarks i and i+1).
struct CalibratedTrajectory {
  SymbolicTrajectory symbolic;
  std::vector<double> arc_positions;
  RawTrajectory raw;
  Polyline geometry;

  size_t NumSegments() const { return symbolic.NumSegments(); }

  /// Half-open index range [first, last) of raw samples whose arc position
  /// lies within segment i, widened to include the bracketing fixes so that
  /// speeds at the boundaries are well-defined.
  std::pair<size_t, size_t> SegmentSampleRange(size_t i) const;

  /// Raw sub-trajectory of segment i (copy).
  RawTrajectory SegmentRaw(size_t i) const;

  /// Interval [t_i, t_{i+1}] of segment i.
  std::pair<double, double> SegmentTimeSpan(size_t i) const;

  /// Geometric length of segment i along the raw polyline, meters.
  double SegmentLength(size_t i) const;
};

/// \brief Anchor-based trajectory calibrator (Def. 2/3 pipeline).
///
/// Rewrites a raw trajectory into a landmark sequence by walking the raw
/// polyline, collecting landmarks within the anchor radius, ordering them by
/// arc length, thinning crowded anchors, and interpolating visit timestamps
/// from the raw fix times. Different samplings of the same route produce the
/// same symbolic trajectory (the paper's motivating requirement, Fig. 2).
class Calibrator {
 public:
  /// `landmarks` must outlive the calibrator.
  explicit Calibrator(const LandmarkIndex* landmarks,
                      const CalibrationOptions& options =
                          CalibrationOptions());
  ~Calibrator();
  Calibrator(Calibrator&&) noexcept;
  Calibrator& operator=(Calibrator&&) noexcept;

  /// Calibrates one trajectory. Fails with InvalidArgument for trajectories
  /// with fewer than 2 samples or non-monotonic timestamps, and with
  /// NotFound when fewer than two anchors are within reach (nothing to
  /// describe). Thread-safe: concurrent calls share the (mutex-guarded)
  /// calibration cache.
  ///
  /// NOTE: results are memoized against the landmark set as-is; landmark
  /// *positions* must not change under a live calibrator (significance
  /// updates are fine — anchor thinning consults significance only to
  /// break exact distance ties, and STMaker's cache is warmed after
  /// training).
  ///
  /// With a context, the polyline scan checks the deadline/cancel token
  /// periodically and aborts with kDeadlineExceeded/kCancelled; those
  /// statuses are never memoized (they describe the request, not the
  /// trajectory), so a later call with a fresh context recomputes.
  Result<CalibratedTrajectory> Calibrate(
      const RawTrajectory& raw, const RequestContext* ctx = nullptr) const;

  /// Hit/miss/eviction counters of the calibration cache; all-zero when
  /// disabled.
  CacheStats Stats() const;

 private:
  struct Cache;  // defined in calibration.cc

  Result<CalibratedTrajectory> CalibrateUncached(
      const RawTrajectory& raw, const RequestContext* ctx) const;

  const LandmarkIndex* landmarks_;
  CalibrationOptions options_;
  std::unique_ptr<Cache> cache_;  ///< null when cache_size == 0
};

}  // namespace stmaker

#endif  // STMAKER_TRAJ_CALIBRATION_H_
