#include "traj/generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "traj/congestion.h"

namespace stmaker {

namespace {

// Cheap deterministic per-(seed, edge) uniform in [0, 1) for route-choice
// noise; avoids materializing a noise vector per trip.
double EdgeNoiseUniform(uint64_t seed, EdgeId edge) {
  uint64_t z = seed ^ (static_cast<uint64_t>(edge) * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53;
}

// The simulated "truth track": piecewise-linear (position, time) vertices.
struct TrackVertex {
  Vec2 pos;
  double time;
};

}  // namespace

TrajectoryGenerator::TrajectoryGenerator(
    const RoadNetwork* network, const LandmarkIndex* landmarks,
    const TrajectoryGeneratorOptions& options)
    : network_(network),
      landmarks_(landmarks),
      options_(options),
      router_(network) {
  STMAKER_CHECK(network != nullptr);
  STMAKER_CHECK(landmarks != nullptr);
  for (const Landmark& lm : landmarks->landmarks()) {
    if (lm.kind == LandmarkKind::kTurningPoint &&
        landmarks->network_node(lm.id) >= 0) {
      junction_landmarks_.push_back(lm.id);
    }
  }
}

double TrajectoryGenerator::SampleStartTimeOfDay(Random* rng) {
  // Hourly taxi-trip volume weights (relative).
  static constexpr double kHourWeights[24] = {
      0.30, 0.22, 0.18, 0.18, 0.25, 0.45,  // 0–5
      0.95, 1.25, 1.35, 1.10, 1.00, 1.05,  // 6–11
      1.05, 1.00, 1.00, 1.05, 1.20, 1.35,  // 12–17
      1.30, 1.10, 0.90, 0.75, 0.60, 0.45,  // 18–23
  };
  std::vector<double> weights(std::begin(kHourWeights),
                              std::end(kHourWeights));
  size_t hour = rng->WeightedIndex(weights);
  return (static_cast<double>(hour) + rng->Uniform()) * 3600.0;
}

Result<GeneratedTrip> TrajectoryGenerator::GenerateTrip(double start_time,
                                                        Random* rng) const {
  STMAKER_CHECK(rng != nullptr);
  if (junction_landmarks_.size() < 2) {
    return Status::FailedPrecondition("not enough junction landmarks");
  }

  // --- Pick an OD pair. -------------------------------------------------------
  LandmarkId origin = -1;
  LandmarkId destination = -1;
  NodeId src = -1;
  NodeId dst = -1;
  for (int attempt = 0; attempt < 64; ++attempt) {
    LandmarkId a =
        junction_landmarks_[rng->UniformInt(junction_landmarks_.size())];
    LandmarkId b =
        junction_landmarks_[rng->UniformInt(junction_landmarks_.size())];
    if (a == b) continue;
    const Landmark& la = landmarks_->landmark(a);
    const Landmark& lb = landmarks_->landmark(b);
    if (Distance(la.pos, lb.pos) < options_.min_od_distance_m) continue;
    origin = a;
    destination = b;
    src = landmarks_->network_node(a);
    dst = landmarks_->network_node(b);
    break;
  }
  if (origin < 0) {
    return Status::NotFound("no OD pair satisfying the distance constraint");
  }

  // --- Route with perturbed costs (route-choice diversity). -------------------
  // Congestion couples into route choice: at rush hour drivers spread over
  // alternates, detour around jams, and botch more manoeuvres, so the
  // detour/U-turn propensities and the cost noise all scale with intensity.
  // This is what gives routing features their day/night FF contrast (Fig. 8).
  const double intensity = CongestionIntensity(start_time);
  const uint64_t noise_seed = rng->Next();
  const double sigma = options_.route_cost_noise * (0.6 + 1.3 * intensity);
  // Minor roads carry an access penalty beyond their free-flow speed
  // (signals, parking, pedestrians — standard in route-choice models).
  // Without it the grid offers a cheap parallel minor street everywhere and
  // local paths between nearby landmarks stop being unique, which is
  // unrealistic and washes out the popular-route comparisons.
  auto access_penalty = [](RoadGrade g) {
    switch (g) {
      case RoadGrade::kCountryRoad:
        return 1.3;
      case RoadGrade::kVillageRoad:
        return 1.8;
      case RoadGrade::kFeederRoad:
        return 2.4;
      default:
        return 1.0;
    }
  };
  EdgeCostFn cost = [noise_seed, sigma, access_penalty](const RoadEdge& e,
                                                        bool) {
    double speed_mps = FreeFlowSpeedKmh(e.grade) / 3.6;
    double u = EdgeNoiseUniform(noise_seed, e.id);
    // exp of a centered uniform approximates lognormal cost noise. The
    // persistent edge bias dominates the per-trip noise off-peak, so the
    // crowd converges on one route per OD pair; at rush hour the noise grows
    // past the bias and routes spread.
    double mult = std::exp(sigma * (u - 0.5) * 3.46);
    return e.length_m / speed_mps * e.cost_bias * access_penalty(e.grade) *
           mult;
  };

  GeneratedTrip trip;
  trip.origin_landmark = origin;
  trip.destination_landmark = destination;
  trip.start_time = start_time;

  bool detour = rng->Bernoulli(
      std::min(0.9, options_.detour_probability * (0.4 + 2.0 * intensity)));
  Path route;
  if (detour) {
    // Route via a random midpoint to force a non-popular path.
    NodeId mid = static_cast<NodeId>(rng->UniformInt(network_->NumNodes()));
    Result<Path> first = router_.Route(src, mid, cost);
    Result<Path> second = router_.Route(mid, dst, cost);
    if (first.ok() && second.ok() && !first->nodes.empty() &&
        !second->nodes.empty()) {
      route = std::move(first).value();
      const Path& tail = second.value();
      route.nodes.insert(route.nodes.end(), tail.nodes.begin() + 1,
                         tail.nodes.end());
      route.edges.insert(route.edges.end(), tail.edges.begin(),
                         tail.edges.end());
      route.cost += tail.cost;
      trip.events.detour = true;
    }
  }
  if (route.nodes.empty()) {
    Result<Path> direct = router_.Route(src, dst, cost);
    if (!direct.ok()) return direct.status();
    route = std::move(direct).value();
  }

  // --- Optionally inject a U-turn manoeuvre. ----------------------------------
  if (route.nodes.size() >= 4 &&
      rng->Bernoulli(std::min(
          0.9, options_.uturn_probability * (0.4 + 1.8 * intensity)))) {
    size_t k = 1 + rng->UniformInt(route.nodes.size() - 2);
    NodeId at = route.nodes[k];
    NodeId prev = route.nodes[k - 1];
    NodeId next = route.nodes[k + 1];
    // Find a two-way side street to overshoot into and come back from.
    for (const Adjacency& adj : network_->OutEdges(at)) {
      if (adj.neighbor == prev || adj.neighbor == next) continue;
      const RoadEdge& e = network_->edge(adj.edge);
      if (e.direction != TrafficDirection::kTwoWay) continue;
      route.nodes.insert(route.nodes.begin() + k + 1, {adj.neighbor, at});
      route.edges.insert(route.edges.begin() + k, {adj.edge, adj.edge});
      trip.events.num_uturns = 1;
      break;
    }
  }

  trip.route_nodes = route.nodes;
  trip.route_edges = route.edges;

  // --- Simulate motion along the route. ---------------------------------------
  const double driver = std::exp(rng->Normal(0, options_.driver_speed_sigma));
  // Per-trip stop propensity: some trips thread green waves, others hit
  // every red. The heavy-tailed spread is what makes stay-point counts
  // deviate from the historical average often enough to get described.
  const double stop_propensity = std::exp(rng->Normal(0, 0.9));
  std::vector<TrackVertex> track;
  track.push_back({network_->node(route.nodes[0]).pos, start_time});
  double now = start_time;
  bool long_stop_pending = rng->Bernoulli(options_.long_stop_probability);
  size_t long_stop_at =
      route.nodes.size() > 3 ? 1 + rng->UniformInt(route.nodes.size() - 2)
                             : 0;

  for (size_t i = 0; i + 1 < route.nodes.size(); ++i) {
    const RoadEdge& e = network_->edge(route.edges[i]);
    const Vec2 a = network_->node(route.nodes[i]).pos;
    const Vec2 b = network_->node(route.nodes[i + 1]).pos;
    double speed_kmh = FreeFlowSpeedKmh(e.grade) *
                       CongestionSpeedFactor(now) * driver *
                       rng->Uniform(0.95, 1.04);
    double speed_mps = std::max(1.0, speed_kmh / 3.6);
    double travel_s = Distance(a, b) / speed_mps;
    now += travel_s;
    track.push_back({b, now});

    // Holds at the downstream intersection (not at the destination).
    if (i + 2 < route.nodes.size()) {
      double hold = 0;
      if (long_stop_pending && i + 1 == long_stop_at) {
        hold = 60.0 + rng->Exponential(options_.long_stop_mean_s);
        long_stop_pending = false;
      } else if (rng->Bernoulli(std::min(
                     0.9, stop_propensity * IntersectionStopProbability(now)))) {
        hold = 5.0 + rng->Exponential(IntersectionStopMeanSeconds(now));
        hold = std::min(hold, 300.0);
      }
      if (hold > 0) {
        now += hold;
        track.push_back({b, now});
        trip.events.total_hold_s += hold;
        if (hold >= options_.stay_count_threshold_s) {
          trip.events.num_stays += 1;
          trip.events.total_stay_s += hold;
        }
      }
    }
  }

  // --- Sample the truth track into a raw trajectory. --------------------------
  trip.sampling = rng->Bernoulli(options_.distance_sampling_fraction)
                      ? SamplingStrategy::kUniformDistance
                      : SamplingStrategy::kUniformTime;
  auto emit = [&](const Vec2& pos, double time) {
    Vec2 noisy = pos + Vec2{rng->Normal(0, options_.gps_noise_m),
                            rng->Normal(0, options_.gps_noise_m)};
    trip.raw.samples.push_back({noisy, time});
  };

  if (trip.sampling == SamplingStrategy::kUniformTime) {
    double t = track.front().time;
    size_t seg = 0;
    while (t < track.back().time) {
      while (seg + 1 < track.size() && track[seg + 1].time <= t) ++seg;
      const TrackVertex& v0 = track[seg];
      const TrackVertex& v1 = track[std::min(seg + 1, track.size() - 1)];
      double dt = v1.time - v0.time;
      double f = dt > 0 ? (t - v0.time) / dt : 0.0;
      emit(v0.pos + (v1.pos - v0.pos) * f, t);
      t += options_.time_sample_interval_s;
    }
    emit(track.back().pos, track.back().time);
  } else {
    double next_at = 0;  // distance threshold for the next fix
    double travelled = 0;
    emit(track.front().pos, track.front().time);
    next_at = options_.distance_sample_interval_m;
    for (size_t i = 1; i < track.size(); ++i) {
      double leg = Distance(track[i - 1].pos, track[i].pos);
      if (leg <= 0) continue;  // stationary hold: no distance accrues
      double leg_start = travelled;
      while (next_at <= leg_start + leg) {
        double f = (next_at - leg_start) / leg;
        double t = track[i - 1].time + f * (track[i].time - track[i - 1].time);
        emit(track[i - 1].pos + (track[i].pos - track[i - 1].pos) * f, t);
        next_at += options_.distance_sample_interval_m;
      }
      travelled += leg;
    }
    emit(track.back().pos, track.back().time);
  }

  return trip;
}

std::vector<GeneratedTrip> TrajectoryGenerator::GenerateCorpus(
    size_t count, int num_travelers, int num_days, uint64_t seed) const {
  STMAKER_CHECK(num_travelers > 0);
  STMAKER_CHECK(num_days > 0);
  Random rng(seed);
  std::vector<GeneratedTrip> corpus;
  corpus.reserve(count);
  size_t attempts = 0;
  const size_t max_attempts = count * 10 + 100;
  while (corpus.size() < count && attempts++ < max_attempts) {
    double day = static_cast<double>(rng.UniformInt(
        static_cast<uint64_t>(num_days)));
    double start = day * kSecondsPerDay + SampleStartTimeOfDay(&rng);
    Result<GeneratedTrip> trip = GenerateTrip(start, &rng);
    if (!trip.ok()) continue;
    trip->raw.traveler = static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(num_travelers)));
    corpus.push_back(std::move(trip).value());
  }
  return corpus;
}

}  // namespace stmaker
