#include "traj/calibration.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <deque>
#include <mutex>

#include "common/arena.h"
#include "common/check.h"
#include "common/lru_cache.h"
#include "common/metrics.h"

namespace stmaker {

namespace {

inline uint64_t MixBits(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

/// Interpolates the fix time at arc-length position `s` from the per-vertex
/// cumulative lengths of the raw polyline.
double TimeAtArc(const Polyline& geometry, const RawTrajectory& raw,
                 double s) {
  const size_t n = raw.samples.size();
  STMAKER_CHECK(n >= 1);
  if (s <= 0) return raw.samples.front().time;
  if (s >= geometry.Length()) return raw.samples.back().time;
  // Find the first vertex at arc >= s.
  size_t lo = 0;
  size_t hi = n - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (geometry.CumulativeLength(mid) < s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) return raw.samples.front().time;
  double a0 = geometry.CumulativeLength(lo - 1);
  double a1 = geometry.CumulativeLength(lo);
  double t0 = raw.samples[lo - 1].time;
  double t1 = raw.samples[lo].time;
  if (a1 <= a0) return t0;
  double t = (s - a0) / (a1 - a0);
  return t0 + t * (t1 - t0);
}

}  // namespace

std::pair<size_t, size_t> CalibratedTrajectory::SegmentSampleRange(
    size_t i) const {
  STMAKER_CHECK(i < NumSegments());
  double a0 = arc_positions[i];
  double a1 = arc_positions[i + 1];
  const size_t n = raw.samples.size();
  // First sample strictly inside the segment.
  size_t first = 0;
  while (first + 1 < n && geometry.CumulativeLength(first + 1) <= a0) {
    ++first;
  }
  size_t last = first;
  while (last + 1 < n && geometry.CumulativeLength(last) < a1) {
    ++last;
  }
  return {first, last + 1};
}

RawTrajectory CalibratedTrajectory::SegmentRaw(size_t i) const {
  auto [first, last] = SegmentSampleRange(i);
  RawTrajectory out;
  out.traveler = raw.traveler;
  out.samples.assign(raw.samples.begin() + first, raw.samples.begin() + last);
  return out;
}

std::pair<double, double> CalibratedTrajectory::SegmentTimeSpan(
    size_t i) const {
  STMAKER_CHECK(i < NumSegments());
  return {symbolic.samples[i].time, symbolic.samples[i + 1].time};
}

double CalibratedTrajectory::SegmentLength(size_t i) const {
  STMAKER_CHECK(i < NumSegments());
  return arc_positions[i + 1] - arc_positions[i];
}

/// Memoization table behind Calibrate(). Keys copy the full trajectory and
/// compare content exactly (bit-equal doubles), so a hit can only ever
/// replay a result the uncached path would recompute identically.
///
/// The table is sharded by key hash: corpus ingestion calibrates distinct
/// trajectories from many worker threads at once (all misses, by
/// construction), and a single mutex around the whole LRU serialized every
/// worker on the Get-then-Put pair — the dominant serialization point in
/// the train thread sweep. With independent shards, concurrent misses on
/// different trajectories take different locks and proceed in parallel;
/// results are unchanged because memoization is exact-key either way.
struct Calibrator::Cache {
  struct Key {
    RawTrajectory traj;

    bool operator==(const Key& other) const {
      const auto& a = traj.samples;
      const auto& b = other.traj.samples;
      if (traj.traveler != other.traj.traveler || a.size() != b.size()) {
        return false;
      }
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].pos.x != b[i].pos.x || a[i].pos.y != b[i].pos.y ||
            a[i].time != b[i].time) {
          return false;
        }
      }
      return true;
    }
  };

  struct KeyHash {
    size_t operator()(const Key& key) const {
      uint64_t h = MixBits(0x51ed270b9f2f4c34ULL,
                           static_cast<uint64_t>(key.traj.traveler));
      h = MixBits(h, key.traj.samples.size());
      for (const RawSample& s : key.traj.samples) {
        h = MixBits(h, std::bit_cast<uint64_t>(s.pos.x));
        h = MixBits(h, std::bit_cast<uint64_t>(s.pos.y));
        h = MixBits(h, std::bit_cast<uint64_t>(s.time));
      }
      return static_cast<size_t>(h);
    }
  };

  /// Enough shards that an 8-way ingest rarely collides, few enough that a
  /// small cache_size still gives each shard a useful capacity.
  static constexpr size_t kNumShards = 8;

  struct Shard {
    explicit Shard(size_t capacity) : lru(capacity) {}
    std::mutex mu;
    LruCache<Key, Result<CalibratedTrajectory>, KeyHash> lru;
  };

  explicit Cache(size_t capacity) {
    const size_t per_shard =
        std::max<size_t>(1, (capacity + kNumShards - 1) / kNumShards);
    for (size_t i = 0; i < kNumShards; ++i) shards.emplace_back(per_shard);
  }

  Shard& ShardFor(size_t hash) { return shards[hash % kNumShards]; }

  std::deque<Shard> shards;  // deque: Shard holds a mutex, so no moves
};

Calibrator::Calibrator(const LandmarkIndex* landmarks,
                       const CalibrationOptions& options)
    : landmarks_(landmarks), options_(options) {
  STMAKER_CHECK(landmarks != nullptr);
  STMAKER_CHECK(options.anchor_radius_m > 0);
  STMAKER_CHECK(options.scan_step_m > 0);
  if (options.cache_size > 0) {
    cache_ = std::make_unique<Cache>(options.cache_size);
  }
}

Calibrator::~Calibrator() = default;
Calibrator::Calibrator(Calibrator&&) noexcept = default;
Calibrator& Calibrator::operator=(Calibrator&&) noexcept = default;

Result<CalibratedTrajectory> Calibrator::Calibrate(
    const RawTrajectory& raw, const RequestContext* ctx) const {
  // Mirrored into the metrics registry (the LRU's own CacheStats remain
  // the per-instance source of truth; the registry aggregates across
  // instances for the serve-mode snapshot).
  static Counter& cache_hits =
      MetricsRegistry::Global().counter("calibration.cache.hits");
  static Counter& cache_misses =
      MetricsRegistry::Global().counter("calibration.cache.misses");
  if (cache_ == nullptr) return CalibrateUncached(raw, ctx);
  Cache::Key key{raw};
  // The content hash is O(samples); computing it once out here keeps the
  // per-shard critical sections down to the map probe itself.
  Cache::Shard& shard = cache_->ShardFor(Cache::KeyHash{}(key));
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (const Result<CalibratedTrajectory>* hit = shard.lru.Get(key)) {
      cache_hits.Increment();
      return *hit;
    }
  }
  cache_misses.Increment();
  Result<CalibratedTrajectory> result = CalibrateUncached(raw, ctx);
  // Deadline/cancel aborts are request-scoped, never a property of the
  // trajectory — memoizing one would make every later call fail too.
  if (!IsContextError(result.status().code())) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.Put(key, result);
  }
  return result;
}

CacheStats Calibrator::Stats() const {
  if (cache_ == nullptr) return CacheStats{};
  CacheStats total;
  for (Cache::Shard& shard : cache_->shards) {
    std::lock_guard<std::mutex> lock(shard.mu);
    CacheStats s = shard.lru.stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
  }
  return total;
}

Result<CalibratedTrajectory> Calibrator::CalibrateUncached(
    const RawTrajectory& raw, const RequestContext* ctx) const {
  STMAKER_RETURN_IF_ERROR(CheckContext(ctx));
  if (raw.samples.size() < 2) {
    return Status::InvalidArgument(
        "calibration requires at least two samples");
  }
  for (size_t i = 1; i < raw.samples.size(); ++i) {
    if (raw.samples[i].time < raw.samples[i - 1].time) {
      return Status::InvalidArgument("timestamps must be non-decreasing");
    }
  }

  CalibratedTrajectory out;
  out.raw = raw;
  std::vector<Vec2> pts;
  pts.reserve(raw.samples.size());
  for (const RawSample& s : raw.samples) pts.push_back(s.pos);
  out.geometry = Polyline(std::move(pts));

  if (out.geometry.Length() <= 0) {
    return Status::NotFound("trajectory has no spatial extent");
  }

  // --- Collect candidate anchors by walking the polyline. -------------------
  // Scan steps overlap heavily (adjacent probes share most landmarks), so
  // dedup via accumulate + sort + unique instead of a per-trajectory hash
  // set; the WithinRadius results land in one arena-backed buffer reused
  // across the whole scan. The downstream anchor order is unaffected:
  // anchors are re-sorted by (arc, dist, id) below regardless of the
  // candidate iteration order.
  ArenaScope scope(Arena::ThreadLocal());
  ArenaVector<LandmarkId> candidates{
      ArenaAllocator<LandmarkId>(&scope.arena())};
  std::vector<LandmarkId> probe;
  const double length = out.geometry.Length();
  CancelCheck check(ctx);
  for (double s = 0;; s += options_.scan_step_m) {
    STMAKER_RETURN_IF_ERROR(check.Tick());
    bool last = s >= length;
    Vec2 p = out.geometry.Interpolate(std::min(s, length));
    probe.clear();
    landmarks_->AppendWithinRadius(p, options_.anchor_radius_m, &probe);
    candidates.insert(candidates.end(), probe.begin(), probe.end());
    if (last) break;
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  struct Anchor {
    LandmarkId id;
    double arc;
    double dist;
    double significance;
  };
  std::vector<Anchor> anchors;
  for (LandmarkId id : candidates) {
    STMAKER_RETURN_IF_ERROR(check.Tick());
    const Landmark& lm = landmarks_->landmark(id);
    PolylineProjection proj = out.geometry.Project(lm.pos);
    if (proj.distance <= options_.anchor_radius_m) {
      anchors.push_back({id, proj.arc_length, proj.distance,
                         lm.significance});
    }
  }
  std::sort(anchors.begin(), anchors.end(),
            [](const Anchor& a, const Anchor& b) {
              if (a.arc != b.arc) return a.arc < b.arc;
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.id < b.id;
            });

  // --- Thin crowded anchors (min spacing). -----------------------------------
  // The first and last anchors are pinned: a trajectory always keeps its
  // origin and destination, however aggressive the spacing. Interior anchors
  // within the spacing window of the previously kept one compete on distance
  // to the route (ties by significance).
  std::vector<Anchor> kept;
  if (!anchors.empty()) kept.push_back(anchors.front());
  for (size_t i = 1; i + 1 < anchors.size(); ++i) {
    const Anchor& a = anchors[i];
    if (a.arc - kept.back().arc < options_.min_spacing_m) {
      if (kept.size() > 1) {  // never displace the pinned origin
        const Anchor& prev = kept.back();
        bool replace = a.dist < prev.dist ||
                       (a.dist == prev.dist &&
                        a.significance > prev.significance);
        if (replace &&
            anchors.back().arc - a.arc >= options_.min_spacing_m) {
          kept.back() = a;
        }
      }
      continue;
    }
    if (anchors.back().arc - a.arc < options_.min_spacing_m) {
      continue;  // would crowd the pinned destination
    }
    kept.push_back(a);
  }
  if (anchors.size() >= 2) kept.push_back(anchors.back());

  if (kept.size() < 2) {
    return Status::NotFound("fewer than two landmark anchors along route");
  }

  // --- Emit symbolic samples with interpolated times. ------------------------
  for (const Anchor& a : kept) {
    SymbolicSample s;
    s.landmark = a.id;
    s.time = TimeAtArc(out.geometry, raw, a.arc);
    out.symbolic.samples.push_back(s);
    out.arc_positions.push_back(a.arc);
  }
  return out;
}

}  // namespace stmaker
