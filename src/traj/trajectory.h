#ifndef STMAKER_TRAJ_TRAJECTORY_H_
#define STMAKER_TRAJ_TRAJECTORY_H_

/// \file
/// Raw and symbolic trajectory value types (Def. 1–3).

#include <cstdint>
#include <vector>

#include "geo/vec2.h"
#include "landmark/landmark.h"

namespace stmaker {

/// Seconds in a day; timestamps are absolute seconds, and the time of day is
/// recovered with TimeOfDaySeconds().
inline constexpr double kSecondsPerDay = 86400.0;

/// Time-of-day in [0, 86400) for an absolute timestamp in seconds.
double TimeOfDaySeconds(double absolute_time);

/// One GPS fix: projected position plus absolute timestamp in seconds.
struct RawSample {
  Vec2 pos;
  double time = 0;
};

/// \brief A raw trajectory (Def. 1): a finite sequence of timestamped
/// locations sampled from a moving object, ordered by time.
struct RawTrajectory {
  std::vector<RawSample> samples;
  int64_t traveler = -1;  ///< Moving-object id; -1 when unknown.

  bool empty() const { return samples.empty(); }
  size_t size() const { return samples.size(); }
  double StartTime() const { return samples.empty() ? 0 : samples.front().time; }
  double EndTime() const { return samples.empty() ? 0 : samples.back().time; }
  double Duration() const { return EndTime() - StartTime(); }
};

/// One landmark visit of a symbolic trajectory.
struct SymbolicSample {
  LandmarkId landmark = -1;
  double time = 0;
};

/// \brief A symbolic trajectory (Def. 3): landmarks with timestamps, the
/// result of anchor-based calibration. |T| is size(); a symbolic trajectory
/// with m landmarks has m-1 segments (Def. 4).
struct SymbolicTrajectory {
  std::vector<SymbolicSample> samples;

  bool empty() const { return samples.empty(); }
  size_t size() const { return samples.size(); }
  size_t NumSegments() const {
    return samples.size() < 2 ? 0 : samples.size() - 1;
  }
};

}  // namespace stmaker

#endif  // STMAKER_TRAJ_TRAJECTORY_H_
