#include "traj/congestion.h"

#include <algorithm>
#include <cmath>

#include "traj/trajectory.h"

namespace stmaker {

namespace {

double Hours(double time_of_day_s) {
  return TimeOfDaySeconds(time_of_day_s) / 3600.0;
}

// Smooth bump centered at `center` with half-width `width` (hours).
double Bump(double h, double center, double width) {
  double d = std::fabs(h - center);
  // Wrap around midnight.
  d = std::min(d, 24.0 - d);
  if (d >= width) return 0;
  double x = d / width;
  return 0.5 * (1.0 + std::cos(M_PI * x));  // 1 at center, 0 at edge.
}

}  // namespace

double CongestionIntensity(double time_of_day_s) {
  double h = Hours(time_of_day_s);
  double intensity = 0;
  intensity += 0.95 * Bump(h, 8.0, 2.5);    // morning rush 6:00–10:00
  intensity += 0.95 * Bump(h, 18.0, 2.5);   // evening rush 16:00–20:00
  intensity += 0.40 * Bump(h, 13.0, 3.5);   // daytime base load
  return std::min(1.0, intensity);
}

double CongestionSpeedFactor(double time_of_day_s) {
  // ~0.72 at night (urban driving stays below design speed: signals and
  // speed limits), ~0.65 midday, ~0.56 at the rush peak. Keeping the night
  // factor close to the volume-weighted daily mean matters for Fig. 8's
  // shape: night trips should rarely deviate enough to get their speed
  // described, while rush-hour trips regularly should.
  double intensity = CongestionIntensity(time_of_day_s);
  return std::max(0.25, 0.72 - 0.17 * intensity);
}

double IntersectionStopProbability(double time_of_day_s) {
  double intensity = CongestionIntensity(time_of_day_s);
  return 0.06 + 0.30 * intensity;
}

double IntersectionStopMeanSeconds(double time_of_day_s) {
  double intensity = CongestionIntensity(time_of_day_s);
  return 25.0 + 50.0 * intensity;
}

int TwoHourBucket(double time_of_day_s) {
  int bucket = static_cast<int>(Hours(time_of_day_s) / 2.0);
  return std::clamp(bucket, 0, 11);
}

}  // namespace stmaker
