#ifndef STMAKER_TRAJ_SIMPLIFY_H_
#define STMAKER_TRAJ_SIMPLIFY_H_

/// \file
/// Douglas–Peucker trajectory simplification and sampling statistics.

#include "geo/bounding_box.h"
#include "traj/trajectory.h"

namespace stmaker {

/// \brief Douglas–Peucker simplification of a raw trajectory.
///
/// Removes fixes whose removal perturbs the geometry by at most
/// `tolerance_m` (perpendicular distance to the retained chord). Endpoints
/// are always preserved, order and timestamps are untouched, and the result
/// is deterministic. Because calibration is sampling-invariant, a simplified
/// trajectory summarizes like the original — the storage-reduction claim of
/// Sec. I made operational.
RawTrajectory SimplifyTrajectory(const RawTrajectory& trajectory,
                                 double tolerance_m);

/// Descriptive statistics of a raw trajectory.
struct TrajectoryStats {
  double length_m = 0;        ///< Summed fix-to-fix distance.
  double duration_s = 0;      ///< Last minus first timestamp.
  double mean_speed_kmh = 0;  ///< length / duration (0 when duration is 0).
  double max_gap_s = 0;       ///< Largest inter-fix time gap.
  BoundingBox extent;         ///< Spatial bounding box.
  size_t num_fixes = 0;
};

/// Computes TrajectoryStats in one pass.
TrajectoryStats ComputeTrajectoryStats(const RawTrajectory& trajectory);

}  // namespace stmaker

#endif  // STMAKER_TRAJ_SIMPLIFY_H_
