#ifndef STMAKER_TRAJ_SANITIZE_H_
#define STMAKER_TRAJ_SANITIZE_H_

/// \file
/// Input sanitization: diagnosing and repairing defective raw
/// trajectories (NaNs, time regressions, duplicates, teleports).

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "traj/trajectory.h"

namespace stmaker {

/// What to do with a trajectory that carries defective points.
enum class SanitizePolicy {
  /// Reject the whole trajectory with kInvalidArgument on the first
  /// defective point (ingestion quarantines it; serving surfaces the
  /// error).
  kStrict,
  /// Drop the defective points and mend the trajectory from what is left.
  /// The repaired trajectory may still be too short to calibrate; that is
  /// reported by the calibrator, not here.
  kRepair,
};

/// Per-point defect categories diagnosed by SanitizeTrajectory.
enum class PointIssue {
  kNonFinite = 0,       ///< NaN/Inf coordinate or timestamp.
  kOutOfRange,          ///< Coordinate magnitude beyond max_abs_coord_m.
  kNonMonotonicTime,    ///< Timestamp runs backwards.
  kDuplicate,           ///< Same position and timestamp as the previous fix.
  kTeleport,            ///< Speed spike beyond max_speed_mps (GPS jump).
};
inline constexpr size_t kNumPointIssues = 5;

/// Human-readable issue name ("non-finite", "teleport", ...).
const char* PointIssueName(PointIssue issue);

/// One diagnosed defect: which sample, and what is wrong with it.
struct PointDiagnostic {
  size_t index = 0;
  PointIssue issue = PointIssue::kNonFinite;
};

struct SanitizeOptions {
  SanitizePolicy policy = SanitizePolicy::kRepair;
  /// Coordinates are projected meters; anything beyond this magnitude (or
  /// non-finite) cannot be a real fix. 10,000 km covers any local
  /// projection.
  double max_abs_coord_m = 1.0e7;
  /// Speed above which a jump is a GPS teleport, not driving. 90 m/s =
  /// 324 km/h. Non-positive disables the teleport check.
  double max_speed_mps = 90.0;
  /// Displacement is judged over at least this window: a point teleports
  /// when dist > max_speed_mps * max(dt, min_speed_dt_s). Sub-second
  /// sampling jitter (two fixes milliseconds apart a few metres from each
  /// other) is not an infinite-speed jump.
  double min_speed_dt_s = 1.0;
  /// Cap on stored per-point diagnostics (counts are always exact).
  size_t max_diagnostics = 32;
};

/// \brief Outcome of one sanitization pass: exact per-issue counts plus the
/// first few per-point diagnostics for logs and reports.
struct SanitizeReport {
  size_t total_points = 0;
  size_t dropped_points = 0;  ///< kRepair: removed; kStrict: offending.
  std::array<size_t, kNumPointIssues> issue_counts{};
  std::vector<PointDiagnostic> diagnostics;  ///< First max_diagnostics.

  bool clean() const { return dropped_points == 0; }
  size_t count(PointIssue issue) const {
    return issue_counts[static_cast<size_t>(issue)];
  }
  /// "3/120 points dropped (non-finite: 1, teleport: 2)" — empty counts
  /// omitted; "clean" when nothing was wrong.
  std::string ToString() const;
};

/// \brief Validates (and under kRepair, mends) one raw trajectory.
///
/// The pass walks the samples once, diagnosing non-finite values,
/// out-of-range coordinates, backwards timestamps, exact duplicates, and
/// speed-spike teleports — each relative to the last *accepted* point, so a
/// single bad fix never poisons its neighbours. Under kStrict any defect
/// fails with kInvalidArgument naming the first offending sample; under
/// kRepair defective points are dropped and the surviving sequence is
/// returned. `report`, when non-null, is always filled (also on failure).
///
/// A clean trajectory is returned unchanged (bit-identical), so running
/// sanitization on well-formed corpora never changes downstream results.
Result<RawTrajectory> SanitizeTrajectory(const RawTrajectory& raw,
                                         const SanitizeOptions& options,
                                         SanitizeReport* report = nullptr);

}  // namespace stmaker

#endif  // STMAKER_TRAJ_SANITIZE_H_
